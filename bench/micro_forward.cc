/**
 * @file
 * Forward-pass throughput: serial vs parallel, FP32 vs compressed.
 *
 * Drives batched inference through InferenceSession on both backends
 * and both engines and reports tokens/sec — the end-to-end latency
 * story the execution refactor exists for. The parallel backend must
 * be bit-identical to serial (asserted here on the logits), so the
 * speedup column is a pure scheduling win. Results are written to
 * BENCH_forward.json (or --out PATH) for the driver; the JSON schema
 * is documented in EXPERIMENTS.md. A final traced pass through the
 * packed engine breaks the forward pass down by span (embed, per
 * layer, attention/ffn/layernorm, per QuantizedLinear).
 *
 * Flags: --seed N, --fast (fewer repetitions), plus
 *   --threads N   parallel-backend width (default GOBO_THREADS/cores)
 *   --seq-len S   tokens per sequence (default 32)
 *   --batch B     sequences per batch (default 16)
 *   --out PATH    JSON output path (default BENCH_forward.json)
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.hh"
#include "bench/bench_util.hh"
#include "core/qexec.hh"
#include "exec/scratch.hh"
#include "exec/session.hh"
#include "kernels/kernels.hh"
#include "model/footprint.hh"
#include "model/generate.hh"
#include "obs/export.hh"
#include "obs/observer.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/timer.hh"

using namespace gobo;
using namespace gobo::bench;

namespace {

using Result = benchjson::ForwardResult;
using ScalingPoint = benchjson::ScalingPoint;

/**
 * Thread counts for the scaling sweep: powers of two from 1 up to
 * max(4, cores), plus the exact core count when it is not a power of
 * two. Counts above the machine's cores are still measured (the JSON
 * stamps `cores` so bench_diff.py knows not to gate on them).
 */
std::vector<std::size_t>
sweepThreadCounts(std::size_t cores)
{
    std::vector<std::size_t> counts;
    std::size_t limit = std::max<std::size_t>(4, cores);
    for (std::size_t t = 1; t <= limit; t *= 2)
        counts.push_back(t);
    if (cores > 1
        && std::find(counts.begin(), counts.end(), cores)
               == counts.end()) {
        counts.push_back(cores);
        std::sort(counts.begin(), counts.end());
    }
    return counts;
}

double
timeBatches(const InferenceSession &session, const TokenBatch &batch,
            std::size_t reps)
{
    // Warm-up pass touches every weight and primes the pool.
    session.headLogitsBatch(batch);
    WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r)
        session.headLogitsBatch(batch);
    double secs = timer.seconds();
    double tokens = static_cast<double>(reps * batch.size()
                                        * batch[0].size());
    return tokens / secs;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 42;
    std::size_t threads = defaultThreads();
    std::size_t seq_len = 32, batch_size = 16, reps = 8;
    std::string out = "BENCH_forward.json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--fast") {
            reps = 2;
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--seq-len" && i + 1 < argc) {
            seq_len = std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--batch" && i + 1 < argc) {
            batch_size = std::strtoul(argv[++i], nullptr, 10);
        } else if (arg == "--out" && i + 1 < argc) {
            out = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--seed N] [--fast] [--threads N]"
                         " [--seq-len S] [--batch B] [--out PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    const char *tier = activeKernels().name;
    std::printf("Micro-benchmark: forward-pass throughput "
                "(threads=%zu, seq=%zu, batch=%zu, kernels=%s)\n\n",
                threads, seq_len, batch_size, tier);

    auto cfg = miniConfig(ModelFamily::BertBase);
    BertModel model = generateModel(cfg, seed);
    ModelQuantOptions qopt = uniformOptions(3, CentroidMethod::Gobo, 4);

    Rng rng(seed * 31 + 5);
    // generateModel leaves the task head zeroed; fill it so the
    // logit-level identity check below compares real values.
    model.resizeHead(3);
    rng.fillGaussian(model.headW.data(), 0.0, 0.5);
    rng.fillGaussian(model.headB.data(), 0.0, 0.5);
    TokenBatch batch;
    for (std::size_t s = 0; s < batch_size; ++s) {
        std::vector<std::int32_t> seq;
        for (std::size_t t = 0; t < seq_len; ++t)
            seq.push_back(static_cast<std::int32_t>(
                rng.integer(0, static_cast<int>(cfg.vocabSize) - 1)));
        batch.push_back(std::move(seq));
    }

    ExecContext serial = ExecContext::serial();
    ExecContext parallel = ExecContext::parallel(threads);

    std::vector<Result> results;
    double fp32_serial = 0.0, fp32_parallel = 0.0, q_parallel = 0.0;

    {
        InferenceSession s_fp32(model, serial);
        InferenceSession p_fp32(model, parallel);
        // Sanity: the backends agree bit-for-bit on the logits.
        auto a = s_fp32.headLogitsBatch(batch);
        auto b = p_fp32.headLogitsBatch(batch);
        for (std::size_t i = 0; i < batch.size(); ++i)
            for (std::size_t j = 0; j < a[i].size(); ++j)
                if (a[i](j) != b[i](j)) {
                    std::fprintf(stderr,
                                 "backend mismatch at [%zu][%zu]\n", i,
                                 j);
                    return 1;
                }
        fp32_serial = timeBatches(s_fp32, batch, reps);
        fp32_parallel = timeBatches(p_fp32, batch, reps);
        results.push_back({"fp32", "serial", fp32_serial});
        results.push_back({"fp32", "parallel", fp32_parallel});
    }
    std::size_t q_resident = 0, packed_resident = 0;
    std::size_t cores = std::thread::hardware_concurrency();
    if (cores == 0)
        cores = 1;
    std::vector<ScalingPoint> scaling;
    {
        InferenceSession s_q(QuantizedBertModel(model, qopt), serial);
        InferenceSession p_q(QuantizedBertModel(model, qopt), parallel);
        qopt.format = WeightFormat::Packed;
        InferenceSession s_pk(QuantizedBertModel(model, qopt), serial);
        InferenceSession p_pk(QuantizedBertModel(model, qopt), parallel);
        // Format contract: Packed serves bit-identical logits from
        // ~B/8 of the Unpacked engine's index bytes.
        auto a = s_q.headLogitsBatch(batch);
        auto b = s_pk.headLogitsBatch(batch);
        for (std::size_t i = 0; i < batch.size(); ++i)
            for (std::size_t j = 0; j < a[i].size(); ++j)
                if (a[i](j) != b[i](j)) {
                    std::fprintf(stderr,
                                 "format mismatch at [%zu][%zu]\n", i,
                                 j);
                    return 1;
                }
        q_resident = s_q.residentWeightBytes();
        packed_resident = s_pk.residentWeightBytes();
        double q_serial = timeBatches(s_q, batch, reps);
        q_parallel = timeBatches(p_q, batch, reps);
        results.push_back({"qexec", "serial", q_serial, q_resident});
        results.push_back({"qexec", "parallel", q_parallel, q_resident});
        double pk_serial = timeBatches(s_pk, batch, reps);
        double pk_parallel = timeBatches(p_pk, batch, reps);
        // Packed rows additionally charge the decoded-row cache
        // capacity — one per-arena budget per executing thread — so
        // the compression story stays honest about cached decode
        // bytes. Unpacked and fp32 never populate the cache.
        results.push_back({"qpacked", "serial", pk_serial,
                           packed_resident + decodeCacheResidentBytes(1)});
        results.push_back(
            {"qpacked", "parallel", pk_parallel,
             packed_resident + decodeCacheResidentBytes(threads)});

        // Thread-scaling curve on the packed engine: one session,
        // re-contexted per width so weights stay resident and only the
        // scheduling changes. Every width must reproduce the serial
        // logits bit-for-bit (`b` above) — the curve is meaningless if
        // the work differs.
        for (std::size_t width : sweepThreadCounts(cores)) {
            s_pk.setContext(width <= 1 ? serial
                                       : ExecContext::parallel(width));
            auto scaled = s_pk.headLogitsBatch(batch);
            for (std::size_t i = 0; i < batch.size(); ++i)
                for (std::size_t j = 0; j < b[i].size(); ++j)
                    if (b[i](j) != scaled[i](j)) {
                        std::fprintf(stderr,
                                     "scaling mismatch at threads=%zu"
                                     " [%zu][%zu]\n",
                                     width, i, j);
                        return 1;
                    }
            double tps = timeBatches(s_pk, batch, reps);
            double base =
                scaling.empty() ? tps : scaling[0].tokensPerSec;
            scaling.push_back({width, tps, tps / base});
        }
    }
    std::size_t fp32_resident = cfg.fcWeightParams() * sizeof(float);
    results[0].residentBytes = fp32_resident;
    results[1].residentBytes = fp32_resident;

    ConsoleTable t(
        {"Engine", "Backend", "Tokens/sec", "Speedup", "Resident KiB"});
    for (const auto &r : results) {
        double base = r.engine == "fp32" ? fp32_serial
                                         : results[2].tokensPerSec;
        t.addRow({r.engine, r.backend, ConsoleTable::num(r.tokensPerSec, 0),
                  ConsoleTable::num(r.tokensPerSec / base, 2) + "x",
                  ConsoleTable::num(
                      static_cast<double>(r.residentBytes) / 1024.0,
                      1)});
    }
    t.print(std::cout);

    std::printf("\nresident weight bytes: fp32 %zu, unpacked %zu,"
                " packed %zu (packed/fp32 = %.4f)\n",
                fp32_resident, q_resident, packed_resident,
                static_cast<double>(packed_resident)
                    / static_cast<double>(fp32_resident));

    double speedup = fp32_parallel / fp32_serial;
    std::printf("\nparallel FP32 speedup over serial: %.2fx on %zu"
                " threads\n",
                speedup, threads);

    std::printf("\nThread scaling, packed engine (%zu hardware"
                " cores):\n",
                cores);
    ConsoleTable sc({"Threads", "Tokens/sec", "Speedup"});
    for (const auto &p : scaling)
        sc.addRow({std::to_string(p.threads),
                   ConsoleTable::num(p.tokensPerSec, 0),
                   ConsoleTable::num(p.speedupVsSerial, 2) + "x"});
    sc.print(std::cout);

    // One traced batch through the packed parallel engine (qopt still
    // holds format=Packed from the block above). The span summary is
    // the per-layer time breakdown; timing above ran unobserved, so
    // the throughput numbers carry zero instrumentation cost.
    Observer obs;
    ExecContext traced_ctx = parallel;
    traced_ctx.obs = &obs;
    InferenceSession traced(QuantizedBertModel(model, qopt),
                            traced_ctx);
    // Two forwards back to back: the second demonstrates the decoded-
    // row cache surviving across forwards (pooler/head rows included),
    // visible below as qexec.layer.*.decode_cache_hits.
    traced.headLogitsBatch(batch);
    traced.headLogitsBatch(batch);
    auto spans = summarizeSpans(obs.tracer);

    std::printf("\nPer-span time, one traced packed-parallel batch"
                " (top %zu of %zu spans):\n",
                std::min<std::size_t>(spans.size(), 12), spans.size());
    ConsoleTable st({"Span", "Count", "Total ms", "Mean us"});
    for (std::size_t i = 0; i < spans.size() && i < 12; ++i)
        st.addRow({spans[i].name, std::to_string(spans[i].count),
                   ConsoleTable::num(spans[i].totalUs / 1e3, 2),
                   ConsoleTable::num(spans[i].meanUs, 1)});
    st.print(std::cout);

    // Decoded-row cache outcome across the whole run (all sessions
    // share the process-wide arena registry), plus the per-layer hit
    // counters from the traced session — pooler and head rows hitting
    // here means the cache survived across forwards.
    {
        MetricsSnapshot snap = obs.metrics.snapshot();
        appendScratchCounters(snap, scratchStats());
        appendScratchGauges(snap, scratchStats());
        std::printf("\nDecoded-row cache (budget %zu KiB/arena):\n",
                    decodeCacheBudgetBytes() / 1024);
        for (const auto &c : snap.counters)
            if (c.name.find("decode_cache") != std::string::npos
                || c.name.find("decode_row") != std::string::npos)
                std::printf("  %-44s %zu\n", c.name.c_str(),
                            static_cast<std::size_t>(c.value));
        for (const auto &g : snap.gauges)
            if (g.name.find("decode_") != std::string::npos)
                std::printf("  %-44s %.3f\n", g.name.c_str(), g.value);
    }

    benchjson::ForwardDoc doc;
    doc.seqLen = seq_len;
    doc.batch = batch_size;
    doc.threads = threads;
    doc.cores = cores;
    doc.kernelTier = tier;
    doc.seqTile = activeKernels().seqTile;
    doc.decodeCacheKb = decodeCacheBudgetBytes() / 1024;
    doc.results = results;
    doc.scaling = scaling;
    doc.spans = spans;
    doc.fp32ParallelSpeedup = speedup;
    doc.qexecParallelTokensPerSec = q_parallel;
    doc.packedResidentOverFp32 = static_cast<double>(packed_resident)
                                 / static_cast<double>(fp32_resident);

    std::ofstream json(out);
    if (json) {
        benchjson::writeForwardJson(doc, json);
        json.close();
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}
