/**
 * @file
 * Statistical robustness check: the headline Table IV orderings (GOBO
 * vs K-Means vs Linear at 3 bits, BERT-Base MNLI) across independent
 * seeds — independent generated models, tasks, and label noise. The
 * orderings the paper reports should hold per seed, not just on one
 * lucky draw.
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "util/table.hh"

using namespace gobo;
using namespace gobo::bench;

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);
    std::size_t n_seeds = opt.fast ? 2 : 5;
    std::puts("Robustness: 3-bit centroid-policy errors across seeds "
              "(BERT-Base, MNLI-like)\n");

    ConsoleTable t({"Seed", "GOBO err", "K-Means err", "Linear err",
                    "Ordering holds"});
    std::vector<double> gobo_errs, km_errs, lin_errs;
    std::size_t holds = 0;
    for (std::size_t s = 0; s < n_seeds; ++s) {
        Options seed_opt = opt;
        seed_opt.seed = opt.seed + 1000 * s;
        auto setup = makeTask(ModelFamily::BertBase, TaskKind::MnliLike,
                              seed_opt);
        double gobo = setup.baseline
                      - evalQuantized(setup, uniformOptions(
                                                 3, CentroidMethod::Gobo));
        double km = setup.baseline
                    - evalQuantized(setup,
                                    uniformOptions(3,
                                                   CentroidMethod::KMeans));
        double lin = setup.baseline
                     - evalQuantized(setup,
                                     uniformOptions(
                                         3, CentroidMethod::Linear));
        gobo_errs.push_back(gobo);
        km_errs.push_back(km);
        lin_errs.push_back(lin);
        bool ok = gobo <= km && km <= lin;
        holds += ok ? 1 : 0;
        t.addRow({std::to_string(seed_opt.seed),
                  ConsoleTable::pct(100.0 * gobo, 2),
                  ConsoleTable::pct(100.0 * km, 2),
                  ConsoleTable::pct(100.0 * lin, 2), ok ? "yes" : "NO"});
        std::printf("  [seed %zu done]\n", seed_opt.seed);
    }
    std::puts("");
    t.print(std::cout);

    auto mean_sd = [](const std::vector<double> &xs) {
        double m = 0.0;
        for (double x : xs)
            m += x;
        m /= static_cast<double>(xs.size());
        double v = 0.0;
        for (double x : xs)
            v += (x - m) * (x - m);
        return std::pair<double, double>{
            m, std::sqrt(v / static_cast<double>(xs.size()))};
    };
    auto [gm, gs] = mean_sd(gobo_errs);
    auto [km_m, km_s] = mean_sd(km_errs);
    auto [lm, ls] = mean_sd(lin_errs);
    std::printf("\nmean +/- sd over %zu seeds: GOBO %.2f%% +/- %.2f, "
                "K-Means %.2f%% +/- %.2f, Linear %.2f%% +/- %.2f\n",
                n_seeds, 100.0 * gm, 100.0 * gs, 100.0 * km_m,
                100.0 * km_s, 100.0 * lm, 100.0 * ls);
    std::printf("ordering GOBO <= K-Means <= Linear held on %zu/%zu "
                "seeds\n",
                holds, n_seeds);
    return 0;
}
