/**
 * @file
 * Regenerates paper Table III: GOBO vs the BERT-specific quantization
 * methods (Intel Q8BERT, Q-BERT) on BERT-Base / MNLI.
 *
 * Accuracy comes from the mini-scale task; compression ratios are
 * computed at the real checkpoint dimensions (exact serialized bytes:
 * streaming GOBO quantization of full-size generated weights, analytic
 * accounting for the fixed-rate baselines). The baselines run
 * post-training here (no fine-tuning is available), which the paper
 * row notes as "No Fine-tuning: no" — see EXPERIMENTS.md.
 */

#include <cstdio>
#include <iostream>

#include "baselines/q8bert.hh"
#include "baselines/qbert.hh"
#include "bench/bench_util.hh"
#include "util/table.hh"

using namespace gobo;
using namespace gobo::bench;

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);
    auto setup = makeTask(ModelFamily::BertBase, TaskKind::MnliLike, opt);
    auto full = fullConfig(ModelFamily::BertBase);

    std::puts("Table III: GOBO vs BERT-specific quantization, "
              "BERT-Base / MNLI\n");

    ConsoleTable t({"Scheme", "Weights", "Embedding", "Accuracy (m)",
                    "Error", "No Fine-tuning", "Compression Ratio"});

    t.addRow({"Baseline", "FP32", "FP32",
              ConsoleTable::pct(100.0 * setup.baseline, 2), "-", "-",
              "1.00x"});

    // Q8BERT: 8-bit weights and embeddings.
    {
        BertModel copy = setup.model;
        auto report = q8bertQuantizeModelInPlace(copy);
        double acc = evaluate(copy, setup.data);
        auto cr = q8bertAccountConfig(full).totalCompressionRatio();
        t.addRow({"Q8BERT-like", "8-bit", "8-bit",
                  ConsoleTable::pct(100.0 * acc, 2),
                  ConsoleTable::pct(100.0 * (setup.baseline - acc), 2),
                  "no (paper); post-training here",
                  ConsoleTable::num(cr, 2) + "x"});
    }

    // Q-BERT: 3/4-bit group dictionaries, 8-bit embeddings.
    for (unsigned bits : {3u, 4u}) {
        BertModel copy = setup.model;
        auto report = qbertQuantizeModelInPlace(copy, bits, 128);
        double acc = evaluate(copy, setup.data);
        auto cr = qbertAccountConfig(full, bits, 128)
                      .totalCompressionRatio();
        t.addRow({"Q-BERT-like", std::to_string(bits) + "-bit", "8-bit",
                  ConsoleTable::pct(100.0 * acc, 2),
                  ConsoleTable::pct(100.0 * (setup.baseline - acc), 2),
                  "no (paper); post-training here",
                  ConsoleTable::num(cr, 2) + "x"});
    }

    // GOBO: 3/4-bit weights, 4-bit embeddings.
    for (unsigned bits : {3u, 4u}) {
        double acc = evalQuantized(
            setup, uniformOptions(bits, CentroidMethod::Gobo, 4));
        ModelQuantOptions full_opt = uniformOptions(
            bits, CentroidMethod::Gobo, 4);
        auto report = quantizeConfigStreaming(full, opt.seed, full_opt);
        t.addRow({"GOBO", std::to_string(bits) + "-bit", "4-bit",
                  ConsoleTable::pct(100.0 * acc, 2),
                  ConsoleTable::pct(100.0 * (setup.baseline - acc), 2),
                  "yes",
                  ConsoleTable::num(report.totalCompressionRatio(), 2)
                      + "x"});
        std::printf("  [GOBO %ub full-scale pass done]\n", bits);
    }

    std::puts("");
    t.print(std::cout);
    std::puts("\npaper: Baseline 84.45%; Q8BERT 83.75% @4x; Q-BERT 3b "
              "83.41% @7.81x, 4b 83.89% @6.52x; GOBO 3b 83.76% @9.83x,"
              " 4b 84.45% @7.92x.");
    return 0;
}
