/**
 * @file
 * Regenerates paper Fig. 1b: per-layer weight value distributions for
 * several FC layers of (generated) BERT-Base, printed as console
 * histograms. Each layer is a Gaussian bell whose width varies by
 * layer — the observation GOBO's G/O split is built on.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/gaussian.hh"
#include "model/generate.hh"
#include "util/stats.hh"

using namespace gobo;

int
main(int argc, char **argv)
{
    auto opt = bench::parseOptions(argc, argv);
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);

    std::puts("Fig. 1b: per-layer weight distributions, BERT-Base");
    std::puts("(counts over [-0.4, 0.4], 33 bins; # scaled per layer)\n");

    // The paper plots layers 5, 10, 15, 20, 25 of its flat FC
    // numbering; use the same flat indexes.
    for (std::size_t flat : {5u, 10u, 15u, 20u, 25u}) {
        const auto &spec = specs[flat];
        Tensor w = generateFcWeight(cfg, spec, opt.seed);
        auto h = histogram(w.flat(), -0.4, 0.4, 33);
        auto fit = GaussianFit::fit(w.flat());

        std::printf("Layer %zu (%s): mean %+0.4f sigma %0.4f\n", flat + 1,
                    spec.name.c_str(), fit.mean(), fit.sigma());
        std::size_t peak = h.maxCount();
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
            int bar = static_cast<int>(60.0
                                       * static_cast<double>(h.counts[b])
                                       / static_cast<double>(peak));
            std::printf("  %+0.3f |%-60.*s| %zu\n", h.binCenter(b), bar,
                        "############################################"
                        "################",
                        h.counts[b]);
        }
        std::puts("");
    }
    std::puts("paper: every layer is a zero-centred Gaussian bell; "
              "width varies per layer.");
    return 0;
}
