/**
 * @file
 * Design-choice ablations for the decisions DESIGN.md calls out:
 *
 *  1. Outlier threshold sweep (-2 .. -8): detected fraction, weight
 *     compression ratio, and task accuracy — why the paper's -4 is a
 *     good operating point.
 *  2. Outlier handling on/off at 3 bits: the paper's claim that
 *     representing the few outliers exactly is what makes 3-bit
 *     quantization viable.
 *  3. Centroid initialization: GOBO's equal-population (sorted) cut vs
 *     a linear-range initialization, both refined by the same L1
 *     iteration.
 *  4. One reconstruction table per layer (GOBO) vs Q-BERT-style
 *     per-group tables: the G-group L1 gain 128 tables buy against
 *     the dictionary-storage overhead they cost.
 *  5. Outlier detection with a 1-component Gaussian fit (the paper's
 *     sklearn GaussianMixture(1)) vs a 2-component EM fit that can
 *     explain heavy shoulders as structure.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "baselines/qbert.hh"
#include "bench/bench_util.hh"
#include "core/cluster.hh"
#include "core/mixture.hh"
#include "core/outliers.hh"
#include "core/quantizer.hh"
#include "model/generate.hh"
#include "util/table.hh"

using namespace gobo;
using namespace gobo::bench;

namespace {

void
thresholdSweep(const Options &opt)
{
    std::puts("Ablation 1: outlier log-probability threshold (3-bit "
              "GOBO, BERT-Base MNLI)\n");
    auto setup = makeTask(ModelFamily::BertBase, TaskKind::MnliLike, opt);
    auto full = fullConfig(ModelFamily::BertBase);

    ConsoleTable t({"Threshold", "Outlier %", "Weight CR",
                    "Accuracy (m)", "Error"});
    for (double threshold : {-2.0, -3.0, -4.0, -5.0, -6.0, -8.0}) {
        ModelQuantOptions q = uniformOptions(3, CentroidMethod::Gobo);
        q.base.outlierThreshold = threshold;
        double acc = evalQuantized(setup, q);
        auto report = quantizeConfigStreaming(full, opt.seed, q);
        t.addRow({ConsoleTable::num(threshold, 0),
                  ConsoleTable::pct(
                      100.0 * report.overallOutlierFraction(), 3),
                  ConsoleTable::num(report.weightCompressionRatio(), 2)
                      + "x",
                  ConsoleTable::pct(100.0 * acc, 2),
                  ConsoleTable::pct(100.0 * (setup.baseline - acc), 2)});
        std::printf("  [threshold %.0f done]\n", threshold);
    }
    std::puts("");
    t.print(std::cout);
    std::puts("\npaper: -4 keeps outliers ~0.1% while maintaining "
              "accuracy; looser thresholds trade compression for "
              "margin, stricter ones leak far-tail weights into the G "
              "group.\n");
}

void
outlierOnOff(const Options &opt)
{
    std::puts("Ablation 2: outlier handling on/off (GOBO, BERT-Base "
              "MNLI)\n");
    auto setup = makeTask(ModelFamily::BertBase, TaskKind::MnliLike, opt);
    ConsoleTable t({"Bits", "With outliers Err", "No outliers Err"});
    for (unsigned bits : {3u, 4u}) {
        ModelQuantOptions with = uniformOptions(bits,
                                                CentroidMethod::Gobo);
        ModelQuantOptions without = with;
        without.base.detectOutliers = false;
        double acc_with = evalQuantized(setup, with);
        double acc_without = evalQuantized(setup, without);
        t.addRow({std::to_string(bits),
                  ConsoleTable::pct(
                      100.0 * (setup.baseline - acc_with), 2),
                  ConsoleTable::pct(
                      100.0 * (setup.baseline - acc_without), 2)});
        std::printf("  [bits=%u done]\n", bits);
    }
    std::puts("");
    t.print(std::cout);
    std::puts("\npaper (Sec. II-A): using representative values for ALL "
              "weights 'either drastically reduced compression or "
              "sacrificed accuracy'.\n");
}

void
initPolicy(const Options &opt)
{
    std::puts("Ablation 3: centroid initialization for the L1 "
              "iteration (one BERT-Base layer, 3-bit)\n");
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);
    ConsoleTable t({"Layer", "Equal-population L1", "Linear-init L1",
                    "Linear-init penalty"});
    for (std::size_t flat : {4u, 22u, 40u}) {
        Tensor w = generateFcWeight(cfg, specs[flat], opt.seed);
        auto split = splitOutliers(w.flat(), -4.0);
        // GOBO as designed: equal-population init + L1-monitored Lloyd.
        auto good = clusterWeights(split.gValues, 3,
                                   CentroidMethod::Gobo);
        // Ablated: linear centroids refined by the same iteration.
        // Implemented by running the Linear policy (no refinement) and
        // then measuring what the L1 iteration starting there reaches:
        // one Lloyd pass from the linear centroids is the Linear
        // result re-assigned, so compare against the converged L1 from
        // the linear start via K-Means trajectory on the same data.
        auto linear_start = clusterWeights(split.gValues, 3,
                                           CentroidMethod::Linear);
        double penalty = linear_start.finalL1 / good.finalL1;
        t.addRow({specs[flat].name,
                  ConsoleTable::num(good.finalL1, 1),
                  ConsoleTable::num(linear_start.finalL1, 1),
                  ConsoleTable::num(penalty, 2) + "x"});
    }
    t.print(std::cout);
    std::puts("\nDeep Compression uses linear initialization; GOBO's "
              "distribution-aware equal-population cut starts (and "
              "ends) with a far lower L1.");
}

void
tableGranularity(const Options &opt)
{
    std::puts("\nAblation 4: one table per layer vs per-group tables "
              "(3-bit, BERT-Base layers)\n");
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);
    ConsoleTable t({"Layer", "Tables", "G-group L1", "Payload KiB",
                    "Table overhead"});
    for (std::size_t flat : {4u, 40u}) {
        Tensor w = generateFcWeight(cfg, specs[flat], opt.seed);
        auto split = splitOutliers(w.flat(), -4.0);

        auto single = clusterWeights(split.gValues, 3,
                                     CentroidMethod::Gobo);
        GoboConfig qcfg;
        qcfg.bits = 3;
        auto q = quantizeTensor(w, qcfg);
        t.addRow({specs[flat].name, "1 (GOBO)",
                  ConsoleTable::num(single.finalL1, 1),
                  ConsoleTable::num(
                      static_cast<double>(q.payloadBytes()) / 1024.0, 1),
                  ConsoleTable::pct(100.0 * 8.0 * 32.0
                                        / static_cast<double>(
                                            q.payloadBits()),
                                    3)});

        for (std::size_t groups : {16u, 128u}) {
            auto gq = quantizeGroupwise(w, 3, groups,
                                        CentroidMethod::Gobo);
            // Exact per-group L1 against each group's own table.
            double l1 = 0.0;
            std::size_t g_begin = 0;
            std::size_t n_groups = gq.dictionaries.size();
            for (std::size_t g = 0; g < n_groups; ++g) {
                std::size_t g_end = ((g + 1) * w.rows()) / n_groups;
                std::span<const float> block{w.row(g_begin).data(),
                                             (g_end - g_begin)
                                                 * w.cols()};
                auto idx = assignNearest(block, gq.dictionaries[g]);
                for (std::size_t i = 0; i < block.size(); ++i)
                    l1 += std::abs(static_cast<double>(block[i])
                                   - gq.dictionaries[g][idx[i]]);
                g_begin = g_end;
            }
            std::size_t dict_bits = 0;
            for (const auto &d : gq.dictionaries)
                dict_bits += d.size() * 32;
            t.addRow({specs[flat].name, std::to_string(groups),
                      ConsoleTable::num(l1, 1),
                      ConsoleTable::num(
                          static_cast<double>(gq.payloadBytes())
                              / 1024.0,
                          1),
                      ConsoleTable::pct(
                          100.0 * static_cast<double>(dict_bits)
                              / (static_cast<double>(
                                     gq.payloadBytes())
                                 * 8.0),
                          3)});
        }
        std::printf("  [%s done]\n", specs[flat].name.c_str());
    }
    std::puts("");
    t.print(std::cout);
    std::puts("\nGOBO's choice: within-layer weight statistics are "
              "close to homogeneous, so extra tables buy little L1 "
              "while a single 8-entry table stays resident in "
              "hardware.");
}

void
mixtureComponents(const Options &opt)
{
    std::puts("\nAblation 5: outlier detection under 1- vs 2-component "
              "Gaussian fits (threshold -4)\n");
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);
    ConsoleTable t({"Layer", "1-comp outliers", "2-comp outliers",
                    "2-comp sigmas"});
    for (std::size_t flat : {4u, 40u, 72u}) {
        Tensor w = generateFcWeight(cfg, specs[flat], opt.seed);
        auto one = splitOutliersMixture(w.flat(), 1, -4.0);
        auto two = splitOutliersMixture(w.flat(), 2, -4.0);
        auto gm = GaussianMixture::fit(w.flat(), 2);
        t.addRow({specs[flat].name,
                  ConsoleTable::pct(100.0 * one.outlierFraction(), 3),
                  ConsoleTable::pct(100.0 * two.outlierFraction(), 3),
                  ConsoleTable::num(gm.components()[0].sigma, 4) + " / "
                      + ConsoleTable::num(gm.components()[1].sigma, 4)});
        std::printf("  [%s done]\n", specs[flat].name.c_str());
    }
    std::puts("");
    t.print(std::cout);
    std::puts("\na second component absorbs the narrow-hot/wide-cold "
              "structure and flags fewer mid-tail weights; the paper's "
              "single-component fit with threshold -4 is the more "
              "conservative (accuracy-safe) choice.");
}

} // namespace

int
main(int argc, char **argv)
{
    auto opt = parseOptions(argc, argv);
    thresholdSweep(opt);
    outlierOnOff(opt);
    initPolicy(opt);
    tableGranularity(opt);
    mixtureComponents(opt);
    return 0;
}
