// End-to-end model compression: the workflow a downstream user runs.
//
//   1. obtain a fine-tuned model (here: generated mini BERT-Base with
//      an MNLI-like head and evaluation set),
//   2. save it as FP32, then as a GOBO 3-bit container (GOBC),
//   3. reload the container — it decodes to a plain FP32 model —
//   4. and verify on disk sizes and task accuracy.
//
// Run: ./compress_model [/tmp/workdir]

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/container.hh"
#include "model/generate.hh"
#include "model/serialize.hh"
#include "task/task.hh"
#include "util/timer.hh"

int
main(int argc, char **argv)
{
    using namespace gobo;
    namespace fs = std::filesystem;

    fs::path dir = argc > 1 ? argv[1] : fs::temp_directory_path();
    fs::path fp32_path = dir / "bert_base_mini.gobm";
    fs::path gobc_path = dir / "bert_base_mini_3b.gobc";

    // 1. The "fine-tuned" model and its evaluation set.
    auto cfg = miniConfig(ModelFamily::BertBase);
    BertModel model = generateModel(cfg, 2024);
    TaskSpec spec = defaultSpec(TaskKind::MnliLike, 2024);
    spec.numExamples = 400;
    Dataset dev = buildTask(model, spec);
    double baseline = evaluate(model, dev);
    std::printf("fine-tuned %s: MNLI-like accuracy %.2f%%\n",
                cfg.name.c_str(), 100.0 * baseline);

    // 2. Save FP32 and compressed.
    saveModel(fp32_path.string(), model);
    ModelQuantOptions options;
    options.base.bits = 3;        // 3-bit G-group indexes
    options.embeddingBits = 4;    // 4-bit embedding table
    WallTimer timer;
    auto report = saveCompressedModel(gobc_path.string(), model, options);
    std::printf("quantized + serialized in %.2f s "
                "(outliers model-wide: %.3f%%)\n",
                timer.seconds(), 100.0 * report.overallOutlierFraction());

    auto fp32_size = fs::file_size(fp32_path);
    auto gobc_size = fs::file_size(gobc_path);
    std::printf("FP32 file:       %8.2f MiB  (%s)\n",
                static_cast<double>(fp32_size) / (1024.0 * 1024.0),
                fp32_path.c_str());
    std::printf("GOBO container:  %8.2f MiB  (%s)\n",
                static_cast<double>(gobc_size) / (1024.0 * 1024.0),
                gobc_path.c_str());
    std::printf("on-disk ratio:   %.2fx  (weights+embeddings alone: "
                "%.2fx)\n",
                static_cast<double>(fp32_size)
                    / static_cast<double>(gobc_size),
                report.totalCompressionRatio());

    // 3. Reload — a plain FP32 model comes back — and 4. re-evaluate.
    BertModel decoded = loadCompressedModel(gobc_path.string());
    double quantized_acc = evaluate(decoded, dev);
    std::printf("decoded accuracy: %.2f%% (delta %+.2f%%)\n",
                100.0 * quantized_acc,
                100.0 * (quantized_acc - baseline));

    fs::remove(fp32_path);
    fs::remove(gobc_path);
    return 0;
}
