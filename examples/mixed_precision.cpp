// Mixed-precision policy exploration (the paper's RoBERTa recipe).
//
// RoBERTa loses ~8% accuracy under uniform 3-bit GOBO; the paper
// localizes the damage to the Value and Intermediate FCs of the early
// encoders and fixes it by giving just those layers 4 bits. This
// example reproduces that workflow:
//
//   1. per-layer sensitivity scan — quantize one layer kind at a time
//      and measure the accuracy drop,
//   2. apply the mixed 3b/4b policy to the kinds the scan flags,
//   3. compare accuracy and effective bits per weight against the
//      uniform 3-bit and 4-bit baselines.
//
// Run: ./mixed_precision

#include <cstdio>

#include "core/quantizer.hh"
#include "model/generate.hh"
#include "task/task.hh"

int
main()
{
    using namespace gobo;

    auto cfg = miniConfig(ModelFamily::RoBerta);
    BertModel model = generateModel(cfg, 7);
    TaskSpec spec = defaultSpec(TaskKind::MnliLike, ModelFamily::RoBerta,
                                7);
    spec.numExamples = 600;
    Dataset dev = buildTask(model, spec);
    double baseline = evaluate(model, dev);
    std::printf("%s baseline: %.2f%%\n\n", cfg.name.c_str(),
                100.0 * baseline);

    // 1. Sensitivity scan: 3-bit one FC kind at a time, early encoders
    // only (where the paper localizes the sensitivity).
    std::puts("per-kind sensitivity (3-bit on that kind in encoders "
              "0-5, FP32 elsewhere):");
    for (FcKind kind : {FcKind::Query, FcKind::Key, FcKind::Value,
                        FcKind::AttnOutput, FcKind::Intermediate,
                        FcKind::Output}) {
        BertModel probe = model;
        GoboConfig qcfg;
        qcfg.bits = 3;
        for (auto &layer : probe.fcLayers()) {
            if (layer.kind != kind || layer.encoder >= cfg.numLayers / 2)
                continue;
            *layer.weight = quantizeTensor(*layer.weight, qcfg)
                                .dequantize();
        }
        double acc = evaluate(probe, dev);
        std::printf("  %-12s drop %+6.2f%%\n", fcKindName(kind).c_str(),
                    100.0 * (baseline - acc));
    }

    // 2./3. Uniform vs mixed policies.
    auto run = [&](const char *label, ModelQuantOptions opt,
                   double bits_avg) {
        BertModel copy = model;
        quantizeModelInPlace(copy, opt);
        double acc = evaluate(copy, dev);
        std::printf("  %-14s accuracy %6.2f%% (drop %5.2f%%), "
                    "%.2f bits/weight => potential %.2fx\n",
                    label, 100.0 * acc, 100.0 * (baseline - acc),
                    bits_avg, 32.0 / bits_avg);
    };

    // Average bits of the mixed policy over the full-size dims.
    auto mixed_bits = [&]() {
        auto full = fullConfig(ModelFamily::RoBerta);
        auto policy = mixedPolicy(6, 3, 4);
        double weighted = 0.0, total = 0.0;
        for (const auto &s : fcLayerSpecs(full)) {
            auto n = static_cast<double>(s.rows * s.cols);
            weighted += n * policy(s.kind, s.encoder);
            total += n;
        }
        return weighted / total;
    }();

    std::puts("\npolicy comparison:");
    ModelQuantOptions uniform3;
    uniform3.base.bits = 3;
    run("uniform 3b", uniform3, 3.0);

    ModelQuantOptions mixed;
    mixed.base.bits = 3;
    mixed.bitsFor = mixedPolicy(cfg.numLayers / 2, 3, 4);
    run("mixed 3b/4b", mixed, mixed_bits);

    ModelQuantOptions uniform4;
    uniform4.base.bits = 4;
    run("uniform 4b", uniform4, 4.0);

    std::puts("\npaper: uniform 3b loses 7.92%, mixed 3b/4b only 1.41% "
              "at 10.13x, uniform 4b 0.30% at 8x.");
    return 0;
}
