// Calibration / sensitivity explorer.
//
// Prints the empirical quantities the experiment suite depends on:
// the detected outlier census at full scale, the GOBO vs K-Means
// convergence ratio, the task baselines, and the metric loss of each
// centroid policy at each bit width on the mini BERT-Base. Useful when
// adapting the synthetic distributions (DESIGN.md documents the knobs
// this explores), and doubles as an end-to-end smoke run of every
// subsystem.
//
// Run: ./calibrate [all|conv|census|mnli|stsb|squad]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/outliers.hh"
#include "core/quantizer.hh"
#include "model/generate.hh"
#include "nn/encoder.hh"
#include "task/task.hh"
#include "util/timer.hh"

using namespace gobo;

namespace {

void
convergenceCheck()
{
    // One representative full-size BERT-Base layer (Fig. 2 setting).
    auto cfg = fullConfig(ModelFamily::BertBase);
    auto specs = fcLayerSpecs(cfg);
    const auto &spec = specs[6 * 5 + 4]; // encoder5.intermediate
    Tensor w = generateFcWeight(cfg, spec, 42);

    WallTimer t;
    auto split = splitOutliers(w.flat(), -4.0);
    auto gobo_r = clusterWeights(split.gValues, 3, CentroidMethod::Gobo);
    double gobo_ms = t.milliseconds();
    t.reset();
    auto km_r = clusterWeights(split.gValues, 3, CentroidMethod::KMeans);
    double km_ms = t.milliseconds();

    std::printf("[convergence] layer %s (%zu weights, %.3f%% outliers)\n",
                spec.name.c_str(), w.size(),
                100.0 * split.outlierFraction());
    std::printf("  GOBO: %zu iters (%.1f ms)  L1 %.1f L2 %.2f\n",
                gobo_r.iterations, gobo_ms, gobo_r.finalL1,
                gobo_r.finalL2);
    std::printf("  KMeans: %zu iters (%.1f ms)  L1 %.1f L2 %.2f\n",
                km_r.iterations, km_ms, km_r.finalL1, km_r.finalL2);
    std::printf("  speedup: %.1fx\n",
                static_cast<double>(km_r.iterations)
                    / static_cast<double>(std::max<std::size_t>(
                        1, gobo_r.iterations)));
}

void
outlierCensus()
{
    auto cfg = fullConfig(ModelFamily::BertBase);
    ModelQuantOptions opt;
    opt.base.bits = 3;
    opt.embeddingBits = 4;
    WallTimer t;
    auto report = quantizeConfigStreaming(cfg, 42, opt);
    std::printf("[census] BERT-Base full scale in %.1f s\n", t.seconds());
    std::printf("  overall outlier fraction: %.4f%%\n",
                100.0 * report.overallOutlierFraction());
    std::printf("  weight CR: %.2fx  total CR: %.2fx  emb CR: %.2fx\n",
                report.weightCompressionRatio(),
                report.totalCompressionRatio(),
                report.embeddingCompressionRatio());
    double min_f = 1.0, max_f = 0.0;
    for (const auto &l : report.layers) {
        min_f = std::min(min_f, l.stats.outlierFraction);
        max_f = std::max(max_f, l.stats.outlierFraction);
    }
    std::printf("  per-layer outlier fraction: min %.3f%% max %.3f%%\n",
                100.0 * min_f, 100.0 * max_f);
}

void
accuracySweep(TaskKind kind)
{
    auto cfg = miniConfig(ModelFamily::BertBase);
    BertModel model = generateModel(cfg, 42);
    auto spec = defaultSpec(kind, 42);
    Dataset data = buildTask(model, spec);

    WallTimer t;
    double baseline = evaluate(model, data);
    std::printf("[%s] baseline %.4f (%.1f s/eval)\n", taskName(kind),
                baseline, t.seconds());

    for (auto method : {CentroidMethod::Gobo, CentroidMethod::KMeans,
                        CentroidMethod::Linear}) {
        for (unsigned bits : {2u, 3u, 4u, 5u}) {
            BertModel q = model;
            ModelQuantOptions opt;
            opt.base.bits = bits;
            opt.base.method = method;
            quantizeModelInPlace(q, opt);
            double score = evaluate(q, data);
            std::printf("  %-8s %ub: %.4f (err %+.4f)\n",
                        centroidMethodName(method), bits, score,
                        baseline - score);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string what = argc > 1 ? argv[1] : "all";
    if (what == "all" || what == "conv")
        convergenceCheck();
    if (what == "all" || what == "census")
        outlierCensus();
    if (what == "all" || what == "mnli")
        accuracySweep(TaskKind::MnliLike);
    if (what == "stsb")
        accuracySweep(TaskKind::StsbLike);
    if (what == "squad")
        accuracySweep(TaskKind::SquadLike);
    return 0;
}
