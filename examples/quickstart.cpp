// Quickstart: quantize one weight matrix with GOBO.
//
// Shows the core three-step API on a single FC layer:
//   1. fit a Gaussian and split off the outliers,
//   2. cluster the "G" group to 2^3 representative values,
//   3. pack indexes + centroid table + outliers into a QuantizedTensor
// — and what it buys: ~10.5x smaller with the planted outliers
// preserved bit-exactly and the bulk within ~0.2 sigma of its
// original value.
//
// Run: ./quickstart

#include <cstdio>

#include "core/quantizer.hh"
#include "tensor/ops.hh"
#include "util/rng.hh"

int
main()
{
    using namespace gobo;

    // A synthetic 768x768 "trained" layer: Gaussian weights plus a few
    // large-magnitude outliers, the shape the paper observes in every
    // BERT FC layer.
    Rng rng(1);
    Tensor weights(768, 768);
    rng.fillGaussian(weights.data(), 0.0, 0.04);
    for (int i = 0; i < 40; ++i)
        weights(static_cast<std::size_t>(rng.integer(0, 767)),
                static_cast<std::size_t>(rng.integer(0, 767))) =
            static_cast<float>(rng.uniform(0.3, 0.5))
            * (rng.bernoulli(0.5) ? 1.0f : -1.0f);

    // Quantize: 3-bit indexes, log-probability outlier threshold -4,
    // GOBO's L1-monitored centroid refinement. One call.
    GoboConfig config;
    config.bits = 3;
    LayerQuantStats stats;
    QuantizedTensor q = quantizeTensor(weights, config, &stats);

    // Decode back to FP32 — plug-in compatible with any engine.
    Tensor decoded = q.dequantize();

    std::printf("weights:            %zu x %zu (%.1f KiB as FP32)\n",
                weights.rows(), weights.cols(),
                static_cast<double>(q.originalBytes()) / 1024.0);
    std::printf("fitted Gaussian:    mean %+0.4f, sigma %0.4f\n",
                stats.mean, stats.sigma);
    std::printf("outliers kept:      %zu (%.3f%% of weights, FP32)\n",
                stats.outlierCount, 100.0 * stats.outlierFraction);
    std::printf("G group:            %u-bit indexes into %zu centroids,"
                " refined in %zu iterations\n",
                q.bits, q.centroids.size(), stats.iterations);
    std::printf("compressed size:    %.1f KiB  =>  %.2fx smaller\n",
                static_cast<double>(q.payloadBytes()) / 1024.0,
                q.compressionRatio());
    std::printf("reconstruction:     %.2f%% relative L2 error\n",
                100.0 * relativeError(weights, decoded));

    // The outliers really are exact.
    bool exact = true;
    for (std::size_t i = 0; i < q.outlierPositions.size(); ++i)
        exact &= decoded.flat()[q.outlierPositions[i]]
                 == q.outlierValues[i];
    std::printf("outliers bit-exact: %s\n", exact ? "yes" : "NO");
    return 0;
}
