// Batched serving with InferenceSession.
//
// Shows the execution stack end to end: build a mini BERT-Base, stand
// up one session per (engine, backend) combination, and push the same
// batch of sequences through all of them. The parallel backend is
// bit-identical to serial — the program checks the logits match
// exactly — so the throughput difference is pure scheduling.
//
// Per-batch wall times feed the obs latency histogram, so each engine
// reports tail latency (p50/p95/p99) next to its throughput — the
// serving-oriented view the paper's latency claims are about.
//
// Run: ./serve_batch [threads]

#include <cstdio>
#include <cstdlib>

#include "core/qexec.hh"
#include "exec/session.hh"
#include "exec/threadpool.hh"
#include "model/generate.hh"
#include "obs/metrics.hh"
#include "util/rng.hh"
#include "util/timer.hh"

using namespace gobo;

namespace {

/** Throughput plus the latency distribution behind it. */
struct ServeStats
{
    double tokensPerSec = 0.0;
    HistogramSnapshot latency;
};

ServeStats
serve(const InferenceSession &session, const TokenBatch &batch,
      std::size_t reps)
{
    session.headLogitsBatch(batch); // warm-up, excluded from stats

    MetricsRegistry reg;
    HistogramId h = reg.histogram("batch_latency_us",
                                  latencyBoundsUs());
    WallTimer total;
    for (std::size_t r = 0; r < reps; ++r) {
        WallTimer t;
        session.headLogitsBatch(batch);
        reg.observe(h, t.seconds() * 1e6);
    }
    ServeStats s;
    // batchTokens sums actual per-sequence lengths; batch.size() *
    // batch[0].size() over-counts as soon as lengths are mixed.
    s.tokensPerSec = static_cast<double>(reps * batchTokens(batch))
                     / total.seconds();
    auto snap = reg.snapshot();
    s.latency = *snap.findHistogram("batch_latency_us");
    return s;
}

void
printStats(const char *label, const ServeStats &s)
{
    std::printf("%s %8.0f tokens/sec   batch p50 %6.1f ms"
                "  p95 %6.1f ms  p99 %6.1f ms\n",
                label, s.tokensPerSec,
                s.latency.quantile(0.50) / 1e3,
                s.latency.quantile(0.95) / 1e3,
                s.latency.quantile(0.99) / 1e3);
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t threads = defaultThreads();
    if (argc > 1) {
        auto parsed = parseThreadsSpec(argv[1]);
        if (!parsed) {
            std::fprintf(stderr,
                         "serve_batch: invalid thread count '%s' "
                         "(want a positive integer <= 65536)\n",
                         argv[1]);
            return 1;
        }
        threads = *parsed;
    }

    auto cfg = miniConfig(ModelFamily::BertBase);
    BertModel model = generateModel(cfg, 42);

    // A batch of 16 random 32-token "requests".
    Rng rng(7);
    // generateModel leaves the task head zeroed; fill it so the
    // bit-identity check compares real logits.
    model.resizeHead(3);
    rng.fillGaussian(model.headW.data(), 0.0, 0.5);
    rng.fillGaussian(model.headB.data(), 0.0, 0.5);
    TokenBatch batch;
    for (int s = 0; s < 16; ++s) {
        std::vector<std::int32_t> seq;
        for (int t = 0; t < 32; ++t)
            seq.push_back(static_cast<std::int32_t>(
                rng.integer(0, static_cast<int>(cfg.vocabSize) - 1)));
        batch.push_back(std::move(seq));
    }

    InferenceSession serial(model, ExecContext::serial());
    InferenceSession parallel(model, ExecContext::parallel(threads));

    // Determinism contract: backends agree bit for bit.
    auto a = serial.headLogitsBatch(batch);
    auto b = parallel.headLogitsBatch(batch);
    bool identical = true;
    for (std::size_t i = 0; i < batch.size(); ++i)
        for (std::size_t j = 0; j < a[i].size(); ++j)
            identical &= a[i](j) == b[i](j);
    std::printf("serial == parallel logits: %s\n",
                identical ? "bit-identical" : "MISMATCH");

    constexpr std::size_t reps = 8;
    ServeStats st = serve(serial, batch, reps);
    ServeStats pt = serve(parallel, batch, reps);
    printStats("fp32  serial:  ", st);
    printStats("fp32  parallel:", pt);
    std::printf("                (%zu threads, %.2fx serial)\n",
                threads, pt.tokensPerSec / st.tokensPerSec);

    // The compressed-domain engine serves from the GOBO format
    // directly — same session API, no decode step. Unpacked widens
    // every 3-bit index to a byte; Packed keeps the 3-bit stream
    // resident and decodes rows inside the kernel. Same logits, ~2.7x
    // fewer weight bytes streamed.
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    qopt.threads = threads;
    InferenceSession unpacked(QuantizedBertModel(model, qopt),
                              ExecContext::parallel(threads));
    qopt.format = WeightFormat::Packed;
    InferenceSession packed(QuantizedBertModel(model, qopt),
                            ExecContext::parallel(threads));

    // Format contract: Packed and Unpacked logits agree bit for bit.
    auto qu = unpacked.headLogitsBatch(batch);
    auto qp = packed.headLogitsBatch(batch);
    identical = true;
    for (std::size_t i = 0; i < batch.size(); ++i)
        for (std::size_t j = 0; j < qu[i].size(); ++j)
            identical &= qu[i](j) == qp[i](j);
    std::printf("packed == unpacked logits:  %s\n",
                identical ? "bit-identical" : "MISMATCH");

    ServeStats ut = serve(unpacked, batch, reps);
    ServeStats qt = serve(packed, batch, reps);
    printStats("qexec unpacked:", ut);
    printStats("qexec packed:  ", qt);
    std::printf("                (3-bit weights, resident %zu /"
                " %zu KiB)\n",
                unpacked.residentWeightBytes() / 1024,
                packed.residentWeightBytes() / 1024);
    return 0;
}
