// Batched serving with InferenceSession.
//
// Shows the execution stack end to end: build a mini BERT-Base, stand
// up one session per (engine, backend) combination, and push the same
// batch of sequences through all of them. The parallel backend is
// bit-identical to serial — the program checks the logits match
// exactly — so the throughput difference is pure scheduling.
//
// Run: ./serve_batch [threads]

#include <cstdio>
#include <cstdlib>

#include "core/qexec.hh"
#include "exec/session.hh"
#include "model/generate.hh"
#include "util/rng.hh"
#include "util/timer.hh"

using namespace gobo;

namespace {

double
tokensPerSec(const InferenceSession &session, const TokenBatch &batch,
             std::size_t reps)
{
    session.headLogitsBatch(batch); // warm-up
    WallTimer timer;
    for (std::size_t r = 0; r < reps; ++r)
        session.headLogitsBatch(batch);
    return static_cast<double>(reps * batch.size() * batch[0].size())
           / timer.seconds();
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t threads = argc > 1
                              ? std::strtoul(argv[1], nullptr, 10)
                              : defaultThreads();

    auto cfg = miniConfig(ModelFamily::BertBase);
    BertModel model = generateModel(cfg, 42);

    // A batch of 16 random 32-token "requests".
    Rng rng(7);
    // generateModel leaves the task head zeroed; fill it so the
    // bit-identity check compares real logits.
    model.resizeHead(3);
    rng.fillGaussian(model.headW.data(), 0.0, 0.5);
    rng.fillGaussian(model.headB.data(), 0.0, 0.5);
    TokenBatch batch;
    for (int s = 0; s < 16; ++s) {
        std::vector<std::int32_t> seq;
        for (int t = 0; t < 32; ++t)
            seq.push_back(static_cast<std::int32_t>(
                rng.integer(0, static_cast<int>(cfg.vocabSize) - 1)));
        batch.push_back(std::move(seq));
    }

    InferenceSession serial(model, ExecContext::serial());
    InferenceSession parallel(model, ExecContext::parallel(threads));

    // Determinism contract: backends agree bit for bit.
    auto a = serial.headLogitsBatch(batch);
    auto b = parallel.headLogitsBatch(batch);
    bool identical = true;
    for (std::size_t i = 0; i < batch.size(); ++i)
        for (std::size_t j = 0; j < a[i].size(); ++j)
            identical &= a[i](j) == b[i](j);
    std::printf("serial == parallel logits: %s\n",
                identical ? "bit-identical" : "MISMATCH");

    double st = tokensPerSec(serial, batch, 4);
    double pt = tokensPerSec(parallel, batch, 4);
    std::printf("fp32  serial:   %8.0f tokens/sec\n", st);
    std::printf("fp32  parallel: %8.0f tokens/sec (%zu threads,"
                " %.2fx)\n",
                pt, threads, pt / st);

    // The compressed-domain engine serves from the GOBO format
    // directly — same session API, no decode step. Unpacked widens
    // every 3-bit index to a byte; Packed keeps the 3-bit stream
    // resident and decodes rows inside the kernel. Same logits, ~2.7x
    // fewer weight bytes streamed.
    ModelQuantOptions qopt;
    qopt.base.bits = 3;
    qopt.threads = threads;
    InferenceSession unpacked(QuantizedBertModel(model, qopt),
                              ExecContext::parallel(threads));
    qopt.format = WeightFormat::Packed;
    InferenceSession packed(QuantizedBertModel(model, qopt),
                            ExecContext::parallel(threads));

    // Format contract: Packed and Unpacked logits agree bit for bit.
    auto qu = unpacked.headLogitsBatch(batch);
    auto qp = packed.headLogitsBatch(batch);
    identical = true;
    for (std::size_t i = 0; i < batch.size(); ++i)
        for (std::size_t j = 0; j < qu[i].size(); ++j)
            identical &= qu[i](j) == qp[i](j);
    std::printf("packed == unpacked logits:  %s\n",
                identical ? "bit-identical" : "MISMATCH");

    double ut = tokensPerSec(unpacked, batch, 4);
    double qt = tokensPerSec(packed, batch, 4);
    std::printf("qexec unpacked: %8.0f tokens/sec (3-bit weights,"
                " resident %zu KiB)\n",
                ut, unpacked.residentWeightBytes() / 1024);
    std::printf("qexec packed:   %8.0f tokens/sec (3-bit weights,"
                " resident %zu KiB)\n",
                qt, packed.residentWeightBytes() / 1024);
    return 0;
}
