/**
 * @file
 * gobo — command-line front end for the library.
 *
 *   gobo generate  --family bert-base [--scale mini|full] [--seed N]
 *                  --out model.gobm
 *   gobo compress  model.gobm --out model.gobc [--bits B]
 *                  [--embedding-bits E] [--method gobo|kmeans|linear]
 *                  [--threshold T]
 *   gobo decompress model.gobc --out model.gobm
 *   gobo inspect   model.gobm | model.gobc
 *   gobo infer     model.gobm | model.gobc [--batch B] [--seq-len S]
 *                  [--threads N] [--backend serial|parallel]
 *                  [--kernel generic|avx2|avx512|native]
 *                  [--engine fp32|qexec] [--format unpacked|packed]
 *                  [--seed N] [--trace OUT.json] [--metrics]
 *                  [--metrics-json OUT.json]
 *   gobo audit     model.gobm [--bits B] [--embedding-bits E]
 *                  [--method gobo|kmeans|linear] [--threshold T]
 *                  [--format unpacked|packed] [--sequences N]
 *                  [--seq-len S] [--seed N] [--json OUT.json]
 *   gobo serve     model.gobm | model.gobc --trace SPEC
 *                  [--threads N] [--backend serial|parallel]
 *                  [--kernel generic|avx2|avx512|native]
 *                  [--engine fp32|qexec] [--format unpacked|packed]
 *                  [--max-queue N] [--flush-deadline-us N]
 *                  [--deadline-us N] [--band-width N]
 *                  [--service-rate TOK/S] [--window-us N]
 *                  [--recorder-capacity N] [--json OUT.json]
 *                  [--timeline-out OUT.json] [--metrics]
 *                  [--metrics-json OUT.json] [--trace-out OUT.json]
 *   gobo top       model.gobm | model.gobc --trace SPEC
 *                  [same execution/admission flags as serve]
 *                  [--window-us N] [--timeline-out OUT.json]
 *   gobo kernels
 *
 * `generate` writes a synthetic FP32 checkpoint (see model/generate);
 * `compress` produces the GOBC container and prints the per-layer
 * accounting; `decompress` decodes back to a plain FP32 model any
 * engine can consume; `inspect` prints what a file contains; `infer`
 * serves a batch of random sequences through an InferenceSession on
 * the chosen execution backend and reports logits and tokens/sec.
 * With `--trace` the run is recorded as Chrome trace-event JSON
 * (load it in chrome://tracing or ui.perfetto.dev); `--metrics`
 * prints the counter/histogram registry plus a span summary and the
 * thread-pool telemetry after the run; `--metrics-json` writes the
 * same registry as machine JSON. `audit` quantizes the model and runs
 * the three-pillar quality/traffic audit (per-layer fidelity, FP32 vs
 * quantized divergence, measured-traffic energy attribution); see
 * DESIGN.md §10. `serve` replays a deterministic synthetic request
 * trace through the continuous-batching admission layer (src/serve)
 * and reports completion/shed counts, tile occupancy, and virtual
 * p50/p95/p99 latency; see DESIGN.md §13. Note `infer --trace` writes
 * a Chrome trace, while `serve --trace` *consumes* a load spec —
 * serve's Chrome trace output flag is `--trace-out`. `serve
 * --timeline-out` writes the gobo-timeline-v1 document (windowed
 * virtual-time series + flight-recorder tail; DESIGN.md §14), and
 * `top` runs the same serve stack but renders that series as a
 * per-window console view instead of the run summary. `kernels`
 * probes the host: one line per SIMD tier (runnable or not, with its
 * sequence-tile width) plus the active tier — CI uses it to decide
 * which GOBO_KERNEL matrix cells the runner supports.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>

#include "core/container.hh"
#include "core/qexec.hh"
#include "core/quantizer.hh"
#include "exec/scratch.hh"
#include "exec/session.hh"
#include "exec/threadpool.hh"
#include "kernels/kernels.hh"
#include "model/footprint.hh"
#include "model/generate.hh"
#include "model/serialize.hh"
#include "obs/audit.hh"
#include "obs/export.hh"
#include "obs/observer.hh"
#include "obs/pmu.hh"
#include "obs/timeline.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"
#include "tensor/ops.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/timer.hh"

namespace {

using namespace gobo;

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "error: %s\n\n", msg);
    std::fputs(
        "usage:\n"
        "  gobo generate  --family F [--scale mini|full] [--seed N]"
        " --out PATH\n"
        "  gobo compress  IN.gobm --out OUT.gobc [--bits B]"
        " [--embedding-bits E]\n"
        "                 [--method gobo|kmeans|linear]"
        " [--threshold T]\n"
        "  gobo decompress IN.gobc --out OUT.gobm\n"
        "  gobo inspect   FILE\n"
        "  gobo infer     FILE [--batch B] [--seq-len S] [--threads N]\n"
        "                 [--backend serial|parallel]"
        " [--kernel generic|avx2|avx512|native]\n"
        "                 [--engine fp32|qexec]"
        " [--format unpacked|packed] [--seed N]\n"
        "                 [--trace OUT.json] [--metrics]"
        " [--metrics-json OUT.json] [--pmu]\n"
        "  gobo audit     FILE [--bits B] [--embedding-bits E]"
        " [--method M]\n"
        "                 [--threshold T] [--format unpacked|packed]\n"
        "                 [--sequences N] [--seq-len S] [--seed N]\n"
        "                 [--json OUT.json] [--pmu]\n"
        "  gobo serve     FILE --trace SPEC [--threads N]\n"
        "                 [--backend serial|parallel]"
        " [--kernel generic|avx2|avx512|native]\n"
        "                 [--engine fp32|qexec]"
        " [--format unpacked|packed]\n"
        "                 [--max-queue N] [--flush-deadline-us N]"
        " [--deadline-us N]\n"
        "                 [--band-width N] [--service-rate TOK/S]\n"
        "                 [--window-us N] [--recorder-capacity N]\n"
        "                 [--json OUT.json] [--timeline-out OUT.json]\n"
        "                 [--metrics] [--metrics-json OUT.json]"
        " [--trace-out OUT.json]\n"
        "  gobo top       FILE --trace SPEC [serve flags]"
        " [--window-us N]\n"
        "                 [--timeline-out OUT.json]\n"
        "  gobo kernels   (probe: one line per SIMD tier on this"
        " host)\n"
        "\nfamilies: bert-base bert-large distilbert roberta"
        " roberta-large\n"
        "trace spec: n=1000,seed=42,rate=300,len=1:32,long=0.25"
        ",burst=4x0.2,period=200000\n",
        stderr);
    std::exit(2);
}

/**
 * Flat flag parser: positional args plus --key value pairs. Flags
 * named in `switches` are booleans and consume no value.
 */
struct Args
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> flags;

    static bool
    isSwitch(const std::string &key)
    {
        static const char *const switches[] = {"metrics", "pmu"};
        for (const char *s : switches)
            if (key == s)
                return true;
        return false;
    }

    static Args
    parse(int argc, char **argv, int first)
    {
        Args a;
        for (int i = first; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg.rfind("--", 0) == 0) {
                std::string key = arg.substr(2);
                if (isSwitch(key)) {
                    a.flags[key] = "1";
                    continue;
                }
                if (i + 1 >= argc)
                    usage(("missing value for " + arg).c_str());
                a.flags[key] = argv[++i];
            } else {
                a.positional.push_back(arg);
            }
        }
        return a;
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = flags.find(key);
        return it == flags.end() ? fallback : it->second;
    }

    bool
    has(const std::string &key) const
    {
        return flags.count(key) != 0;
    }
};

ModelFamily
parseFamily(const std::string &name)
{
    if (name == "bert-base")
        return ModelFamily::BertBase;
    if (name == "bert-large")
        return ModelFamily::BertLarge;
    if (name == "distilbert")
        return ModelFamily::DistilBert;
    if (name == "roberta")
        return ModelFamily::RoBerta;
    if (name == "roberta-large")
        return ModelFamily::RoBertaLarge;
    usage(("unknown family: " + name).c_str());
}

CentroidMethod
parseMethod(const std::string &name)
{
    if (name == "gobo")
        return CentroidMethod::Gobo;
    if (name == "kmeans")
        return CentroidMethod::KMeans;
    if (name == "linear")
        return CentroidMethod::Linear;
    usage(("unknown method: " + name).c_str());
}

/**
 * Strict unsigned flag value via parseUint64Spec. The permissive
 * strtoull idiom this replaces turned "--seed banana" into seed 0 and
 * "--seed -1" into 2^64-1 without a word; a malformed value is a
 * usage error, not a silently different run.
 */
std::uint64_t
parseU64Flag(const Args &args, const std::string &key,
             const std::string &fallback)
{
    std::string text = args.get(key, fallback);
    auto v = parseUint64Spec(text.c_str());
    if (!v)
        usage(("--" + key + " wants an unsigned decimal integer, got '"
               + text + "'")
                  .c_str());
    return *v;
}

int
cmdGenerate(const Args &args)
{
    auto family = parseFamily(args.get("family", ""));
    std::string scale = args.get("scale", "mini");
    std::uint64_t seed = parseU64Flag(args, "seed", "42");
    std::string out = args.get("out", "");
    if (out.empty())
        usage("generate needs --out");

    ModelConfig cfg = scale == "full" ? fullConfig(family)
                                      : miniConfig(family);
    std::printf("generating %s (%zu encoders, hidden %zu, seed %llu)"
                "...\n",
                cfg.name.c_str(), cfg.numLayers, cfg.hidden,
                static_cast<unsigned long long>(seed));
    WallTimer timer;
    BertModel model = generateModel(cfg, seed);
    saveModel(out, model);
    std::printf("wrote %s (%.2f MiB) in %.1f s\n", out.c_str(),
                toMiB(std::filesystem::file_size(out)), timer.seconds());
    return 0;
}

int
cmdCompress(const Args &args)
{
    if (args.positional.empty())
        usage("compress needs an input model");
    std::string in = args.positional[0];
    std::string out = args.get("out", "");
    if (out.empty())
        usage("compress needs --out");

    ModelQuantOptions options;
    options.base.bits = static_cast<unsigned>(
        std::stoul(args.get("bits", "3")));
    options.embeddingBits = static_cast<unsigned>(
        std::stoul(args.get("embedding-bits", "4")));
    options.base.method = parseMethod(args.get("method", "gobo"));
    options.base.outlierThreshold = std::stod(
        args.get("threshold", "-4"));
    options.threads = std::stoul(args.get("threads", "1"));

    BertModel model = loadModel(in);
    WallTimer timer;
    auto report = saveCompressedModel(out, model, options);
    double secs = timer.seconds();

    ConsoleTable t({"Layer", "Bits", "Outliers", "KiB", "Iters"});
    for (const auto &l : report.layers)
        t.addRow({l.name, std::to_string(l.bits),
                  ConsoleTable::pct(100.0 * l.stats.outlierFraction, 3),
                  ConsoleTable::num(
                      static_cast<double>(l.payloadBytes) / 1024.0, 1),
                  std::to_string(l.stats.iterations)});
    t.print(std::cout);

    std::printf("\n%s -> %s in %.2f s\n", in.c_str(), out.c_str(), secs);
    std::printf("weights:    %.2f -> %.2f MiB (%.2fx)\n",
                toMiB(report.weightOriginalBytes),
                toMiB(report.weightPayloadBytes),
                report.weightCompressionRatio());
    std::printf("embeddings: %.2f -> %.2f MiB (%.2fx)\n",
                toMiB(report.embeddingOriginalBytes),
                toMiB(report.embeddingPayloadBytes),
                report.embeddingCompressionRatio());
    std::printf("total:      %.2fx  (file: %.2f MiB)\n",
                report.totalCompressionRatio(),
                toMiB(std::filesystem::file_size(out)));
    return 0;
}

int
cmdDecompress(const Args &args)
{
    if (args.positional.empty())
        usage("decompress needs an input container");
    std::string in = args.positional[0];
    std::string out = args.get("out", "");
    if (out.empty())
        usage("decompress needs --out");
    BertModel model = loadCompressedModel(in);
    saveModel(out, model);
    std::printf("decoded %s -> %s (%.2f MiB FP32)\n", in.c_str(),
                out.c_str(), toMiB(std::filesystem::file_size(out)));
    return 0;
}

int
cmdInspect(const Args &args)
{
    if (args.positional.empty())
        usage("inspect needs a file");
    std::string path = args.positional[0];
    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, "cannot open ", path);
    char magic[5] = {};
    is.read(magic, 4);
    fatalIf(!is, "cannot read ", path);
    is.close();

    // Magic words are written as little-endian u32, so the bytes on
    // disk read "MBOG" (FP32 model) or "CBOG" (compressed container).
    bool is_container = std::memcmp(magic, "CBOG", 4) == 0;
    bool is_model = std::memcmp(magic, "MBOG", 4) == 0;
    fatalIf(!is_container && !is_model, path,
            " is neither a GOBM model nor a GOBC container");

    BertModel model = is_container ? loadCompressedModel(path)
                                   : loadModel(path);
    const auto &cfg = model.config();
    std::printf("%s: %s (%s)\n", path.c_str(),
                is_container ? "GOBC compressed container"
                             : "GOBM FP32 model",
                cfg.name.c_str());
    std::printf("  encoders %zu, hidden %zu, intermediate %zu, heads "
                "%zu\n",
                cfg.numLayers, cfg.hidden, cfg.intermediate,
                cfg.numHeads);
    std::printf("  vocab %zu, max position %zu, head outputs %zu\n",
                cfg.vocabSize, cfg.maxPosition, model.headW.rows());
    std::printf("  FC layers %zu (%zu weight params), parameters "
                "%zu\n",
                cfg.numFcLayers(), cfg.fcWeightParams(),
                model.parameterCount());
    std::printf("  file size %.2f MiB\n",
                toMiB(std::filesystem::file_size(path)));
    return 0;
}

int
cmdInfer(const Args &args)
{
    if (args.positional.empty())
        usage("infer needs a model file");
    std::string path = args.positional[0];

    // Execution backend flags.
    std::size_t threads = std::stoul(args.get("threads", "0"));
    std::string backend = args.get("backend", "parallel");
    ExecContext ctx;
    if (backend == "serial")
        ctx = ExecContext::serial();
    else if (backend == "parallel")
        ctx = ExecContext::parallel(threads);
    else
        usage(("unknown backend: " + backend).c_str());

    std::string format = args.get("format", "unpacked");
    if (format == "packed")
        ctx.weightFormat = WeightFormat::Packed;
    else if (format != "unpacked")
        usage(("unknown format: " + format).c_str());

    // SIMD kernel tier. Default: whatever the process resolved (cpuid
    // best, or GOBO_KERNEL — so the env override must not be shadowed
    // by pinning "native" here); an explicit flag pins this run's
    // context, fatal on a tier the CPU cannot run.
    const KernelSet &kernels = args.has("kernel")
                                   ? kernelsByName(args.get("kernel", ""))
                                   : activeKernels();
    ctx.kernels = &kernels;

    auto batch_size = std::stoul(args.get("batch", "8"));
    auto seq_len = std::stoul(args.get("seq-len", "32"));
    std::uint64_t seed = parseU64Flag(args, "seed", "42");
    std::string engine = args.get("engine", "fp32");
    if (batch_size == 0 || seq_len == 0)
        usage("batch and seq-len must be positive");

    // Observability: any of these flags attaches an Observer to the
    // context before the session captures it. The default (no flags)
    // keeps ctx.obs null, so the forward pass pays one untaken branch
    // per instrumentation site and nothing else.
    std::string trace_path = args.get("trace", "");
    std::string metrics_json_path = args.get("metrics-json", "");
    bool show_metrics = args.has("metrics");
    bool use_pmu = args.has("pmu");
    std::optional<Observer> observer;
    std::optional<PmuRegistry> pmu;
    if (!trace_path.empty() || show_metrics || !metrics_json_path.empty()
        || use_pmu) {
        observer.emplace();
        ctx.obs = &*observer;
    }
    if (use_pmu) {
        // Process-default backend: probes perf_event once, or degrades
        // with a single stderr note. An unavailable registry is inert —
        // the run proceeds identically (bit-identical logits) and the
        // metrics dump reports pmu.available = 0 instead of failing.
        pmu.emplace();
        observer->pmu = &*pmu;
        if (ctx.isParallel())
            pmu->attachWorkers(ThreadPool::shared().workerThreadIds());
    }

    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, "cannot open ", path);
    char magic[5] = {};
    is.read(magic, 4);
    fatalIf(!is, "cannot read ", path);
    is.close();
    bool is_container = std::memcmp(magic, "CBOG", 4) == 0;
    BertModel model = is_container ? loadCompressedModel(path)
                                   : loadModel(path);
    fatalIf(seq_len > model.config().maxPosition, "seq-len ", seq_len,
            " exceeds maxPosition ", model.config().maxPosition);

    Rng rng(seed * 31 + 5);
    TokenBatch batch;
    for (std::size_t s = 0; s < batch_size; ++s) {
        std::vector<std::int32_t> seq;
        for (std::size_t t = 0; t < seq_len; ++t)
            seq.push_back(static_cast<std::int32_t>(rng.integer(
                0,
                static_cast<int>(model.config().vocabSize) - 1)));
        batch.push_back(std::move(seq));
    }

    std::optional<InferenceSession> session;
    if (engine == "qexec") {
        ModelQuantOptions qopt;
        qopt.threads = ctx.isParallel() ? ctx.threads : 1;
        qopt.format = ctx.weightFormat;
        session.emplace(QuantizedBertModel(model, qopt), ctx);
    } else if (engine == "fp32") {
        session.emplace(std::move(model), ctx);
    } else {
        usage(("unknown engine: " + engine).c_str());
    }

    std::printf("%s engine (%s weights, %.1f KiB resident), %s backend"
                " (%zu threads), %s kernels, batch %zu x %zu tokens\n",
                engine.c_str(),
                engine == "qexec" ? weightFormatName(ctx.weightFormat)
                                  : "fp32",
                toKiB(session->residentWeightBytes()),
                backendName(ctx.backend), ctx.threads, kernels.name,
                batch_size, seq_len);
    WallTimer timer;
    auto logits = session->headLogitsBatch(batch);
    double secs = timer.seconds();

    for (std::size_t i = 0; i < logits.size(); ++i) {
        std::printf("seq %2zu: argmax %zu, logits [", i,
                    argmax(logits[i].flat()));
        for (std::size_t j = 0; j < logits[i].size(); ++j)
            std::printf("%s%.4f", j ? ", " : "", logits[i](j));
        std::puts("]");
    }
    std::printf("\n%.1f tokens/sec (%.1f ms for %zu tokens)\n",
                static_cast<double>(batch_size * seq_len) / secs,
                secs * 1e3, batch_size * seq_len);

    if (!trace_path.empty()) {
        std::ofstream os(trace_path, std::ios::binary);
        fatalIf(!os, "cannot write ", trace_path);
        writeChromeTrace(observer->tracer, os);
        std::printf("\nwrote %zu trace events to %s (open in "
                    "chrome://tracing or ui.perfetto.dev)\n",
                    observer->tracer.events().size(),
                    trace_path.c_str());
    }
    if (show_metrics || !metrics_json_path.empty() || use_pmu) {
        MetricsSnapshot snap = observer->metrics.snapshot();
        appendPoolCounters(snap, ThreadPool::shared().telemetry());
        appendScratchCounters(snap, scratchStats());
        appendScratchGauges(snap, scratchStats());
        appendTraceCounters(snap, observer->tracer);
        if (pmu) {
            PmuSnapshot ps = pmu->snapshot();
            appendPmuMetrics(snap, ps);
            if (ps.available && ps.total.valid)
                std::printf("\npmu (%s backend): IPC %.2f, LLC miss "
                            "ratio %.3f, measured %.2f GB/s from "
                            "misses\n",
                            ps.backend.c_str(), ps.ipc(),
                            ps.llcMissRatio(), ps.llcMissGBps());
            else
                std::puts("\npmu: hardware counters unavailable "
                          "(run unchanged; pmu.available = 0)");
        }
        if (show_metrics) {
            std::puts("");
            printMetrics(snap, std::cout);

            auto spans = summarizeSpans(observer->tracer);
            ConsoleTable st({"Span", "Count", "Total ms", "Mean us"});
            for (const auto &s : spans)
                st.addRow({s.name, std::to_string(s.count),
                           ConsoleTable::num(s.totalUs / 1e3, 2),
                           ConsoleTable::num(s.meanUs, 1)});
            std::puts("");
            st.print(std::cout);
        }
        if (!metrics_json_path.empty()) {
            std::ofstream os(metrics_json_path, std::ios::binary);
            fatalIf(!os, "cannot write ", metrics_json_path);
            writeMetricsJson(snap, os);
            std::printf("\nwrote metrics JSON to %s\n",
                        metrics_json_path.c_str());
        }
    }
    return 0;
}

int
cmdAudit(const Args &args)
{
    if (args.positional.empty())
        usage("audit needs a model file");
    std::string path = args.positional[0];

    AuditOptions opt;
    opt.quant.base.bits = static_cast<unsigned>(
        std::stoul(args.get("bits", "3")));
    opt.quant.embeddingBits = static_cast<unsigned>(
        std::stoul(args.get("embedding-bits", "0")));
    opt.quant.base.method = parseMethod(args.get("method", "gobo"));
    opt.quant.base.outlierThreshold = std::stod(
        args.get("threshold", "-4"));
    std::string format = args.get("format", "unpacked");
    if (format == "packed")
        opt.quant.format = WeightFormat::Packed;
    else if (format != "unpacked")
        usage(("unknown format: " + format).c_str());
    opt.sequences = std::stoul(args.get("sequences", "4"));
    opt.seqLen = std::stoul(args.get("seq-len", "32"));
    opt.seed = parseU64Flag(args, "seed", "42");
    if (opt.sequences == 0 || opt.seqLen == 0)
        usage("sequences and seq-len must be positive");

    // Pillar 4 (model validation) when counters are available; an
    // unavailable backend leaves the registry inert and the audit
    // identical to a run without --pmu (the JSON then records
    // "available": false instead of the validation table).
    std::optional<PmuRegistry> pmu;
    if (args.has("pmu")) {
        pmu.emplace();
        opt.pmu = &*pmu;
    }

    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, "cannot open ", path);
    char magic[5] = {};
    is.read(magic, 4);
    fatalIf(!is, "cannot read ", path);
    is.close();
    // A container decodes to FP32 first; the audit then measures its
    // re-quantization under the requested settings.
    bool is_container = std::memcmp(magic, "CBOG", 4) == 0;
    BertModel model = is_container ? loadCompressedModel(path)
                                   : loadModel(path);

    WallTimer timer;
    AuditReport report = auditModel(model, opt);
    double secs = timer.seconds();

    printAuditReport(report, std::cout);
    std::printf("\naudited %zu layers in %.2f s\n",
                report.fidelity.size(), secs);

    std::string json_path = args.get("json", "");
    if (!json_path.empty()) {
        std::ofstream os(json_path, std::ios::binary);
        fatalIf(!os, "cannot write ", json_path);
        writeAuditJson(report, os);
        std::printf("wrote audit JSON to %s\n", json_path.c_str());
    }
    return 0;
}

/**
 * Shared front half of `gobo serve` and `gobo top`: parse the
 * execution-stack and admission flags, load the model, generate the
 * trace, run it. Fills `sopt` and `meta` for the caller's exports;
 * `obs` (nullable) is attached to both the execution context and the
 * serve options.
 */
ServeRun
runServeStack(const Args &args, Observer *obs, ServeOptions &sopt,
              ServeReportMeta &meta)
{
    if (args.positional.empty())
        usage("serve needs a model file");
    std::string path = args.positional[0];

    std::string spec_text = args.get("trace", "");
    if (spec_text.empty())
        usage("serve needs --trace \"n=...,rate=...\" (a load spec, "
              "not a Chrome trace path — that is --trace-out)");
    auto spec = parseTraceSpec(spec_text);
    if (!spec)
        usage(("invalid trace spec: " + spec_text).c_str());

    // Execution stack flags, same shape as infer. Serving defaults to
    // the compressed-domain engine on packed weights — the
    // configuration the paper's latency story is about.
    std::size_t threads =
        static_cast<std::size_t>(parseU64Flag(args, "threads", "0"));
    std::string backend = args.get("backend", "parallel");
    ExecContext ctx;
    if (backend == "serial")
        ctx = ExecContext::serial();
    else if (backend == "parallel")
        ctx = ExecContext::parallel(threads);
    else
        usage(("unknown backend: " + backend).c_str());
    std::string format = args.get("format", "packed");
    if (format == "packed")
        ctx.weightFormat = WeightFormat::Packed;
    else if (format != "unpacked")
        usage(("unknown format: " + format).c_str());
    const KernelSet &kernels = args.has("kernel")
                                   ? kernelsByName(args.get("kernel", ""))
                                   : activeKernels();
    ctx.kernels = &kernels;

    sopt.maxQueue =
        static_cast<std::size_t>(parseU64Flag(args, "max-queue", "256"));
    sopt.flushDeadlineUs = parseU64Flag(args, "flush-deadline-us",
                                        "20000");
    sopt.requestDeadlineUs = parseU64Flag(args, "deadline-us", "0");
    sopt.bandWidth =
        static_cast<std::size_t>(parseU64Flag(args, "band-width", "16"));
    sopt.serviceTokensPerSec = std::stod(
        args.get("service-rate", "4000"));
    if (sopt.serviceTokensPerSec <= 0.0)
        usage("--service-rate must be positive");
    sopt.timelineWindowUs = parseU64Flag(args, "window-us", "1000000");
    if (sopt.timelineWindowUs == 0)
        usage("--window-us must be positive");
    sopt.recorderCapacity = static_cast<std::size_t>(
        parseU64Flag(args, "recorder-capacity", "256"));
    sopt.recorderShedCapacity = sopt.recorderCapacity;
    if (obs) {
        ctx.obs = obs;
        sopt.obs = obs;
    }

    std::ifstream is(path, std::ios::binary);
    fatalIf(!is, "cannot open ", path);
    char magic[5] = {};
    is.read(magic, 4);
    fatalIf(!is, "cannot read ", path);
    is.close();
    bool is_container = std::memcmp(magic, "CBOG", 4) == 0;
    BertModel model = is_container ? loadCompressedModel(path)
                                   : loadModel(path);
    fatalIf(spec->maxLen > model.config().maxPosition,
            "trace len max ", spec->maxLen, " exceeds maxPosition ",
            model.config().maxPosition);

    auto trace = generateTrace(*spec, model.config().vocabSize);

    std::string engine = args.get("engine", "qexec");
    std::optional<InferenceSession> session;
    if (engine == "qexec") {
        ModelQuantOptions qopt;
        qopt.threads = ctx.isParallel() ? ctx.threads : 1;
        qopt.format = ctx.weightFormat;
        session.emplace(QuantizedBertModel(model, qopt), ctx);
    } else if (engine == "fp32") {
        session.emplace(std::move(model), ctx);
    } else {
        usage(("unknown engine: " + engine).c_str());
    }

    meta.trace = traceSpecString(*spec);
    meta.kernelTier = kernels.name;
    meta.threads = ctx.threads;
    meta.engine = engine;
    meta.format = engine == "qexec" ? weightFormatName(ctx.weightFormat)
                                    : "fp32";

    std::printf("serving trace %s\n", meta.trace.c_str());
    std::printf("%s engine (%s weights), %s backend (%zu threads), %s"
                " kernels\n",
                engine.c_str(), meta.format.c_str(),
                backendName(ctx.backend), ctx.threads, kernels.name);

    ServeServer server(*session, sopt);
    // Hand the caller the options the server resolved (tileLanes
    // defaults to the kernel tier's seqTile) so the JSON stamp
    // records the real geometry.
    sopt = server.options();
    return server.runTrace(trace);
}

int
cmdServe(const Args &args)
{
    std::string trace_out = args.get("trace-out", "");
    std::string metrics_json_path = args.get("metrics-json", "");
    bool show_metrics = args.has("metrics");
    std::optional<Observer> observer;
    if (!trace_out.empty() || show_metrics
        || !metrics_json_path.empty())
        observer.emplace();

    ServeOptions sopt;
    ServeReportMeta meta;
    ServeRun run = runServeStack(args, observer ? &*observer : nullptr,
                                 sopt, meta);
    const ServeSummary &sum = run.summary;

    std::printf("\n%llu requests: %llu completed, %llu shed"
                " (overload %llu, deadline %llu)\n",
                static_cast<unsigned long long>(sum.requests),
                static_cast<unsigned long long>(sum.completed),
                static_cast<unsigned long long>(sum.shedOverload
                                                + sum.shedDeadline),
                static_cast<unsigned long long>(sum.shedOverload),
                static_cast<unsigned long long>(sum.shedDeadline));
    std::printf("%llu tiles dispatched, occupancy %.3f"
                " (%llu/%llu lanes)\n",
                static_cast<unsigned long long>(sum.batches),
                sum.tileOccupancy,
                static_cast<unsigned long long>(sum.lanesFilled),
                static_cast<unsigned long long>(sum.lanesTotal));
    ConsoleTable bt({"Band", "Len", "Requests", "Tiles", "Occupancy"});
    for (const auto &b : sum.bands)
        bt.addRow({std::to_string(b.band),
                   std::to_string(b.minLen) + ".."
                       + std::to_string(b.maxLen),
                   std::to_string(b.requests), std::to_string(b.batches),
                   ConsoleTable::num(b.occupancy, 3)});
    bt.print(std::cout);
    std::printf("\nvirtual latency   p50 %8.0f us  p95 %8.0f us"
                "  p99 %8.0f us\n",
                sum.latencyP50Us, sum.latencyP95Us, sum.latencyP99Us);
    std::printf("virtual queue     p50 %8.0f us  p95 %8.0f us"
                "  p99 %8.0f us\n",
                sum.queueWaitP50Us, sum.queueWaitP95Us,
                sum.queueWaitP99Us);
    std::printf("wall: %.2f s, %.0f tokens/sec (%llu tokens served)\n",
                sum.wallSeconds, sum.tokensPerSec,
                static_cast<unsigned long long>(sum.tokensServed));
    std::printf("response checksum 0x%016llx\n",
                static_cast<unsigned long long>(sum.responseChecksum));
    // The postmortem entry point: which windows shed, how hard, and
    // how deep the queue was. No-op on a shed-free run.
    std::puts("");
    printWorstShedWindows(sum.timeline, 5, std::cout);

    std::string json_path = args.get("json", "");
    if (!json_path.empty()) {
        std::ofstream os(json_path, std::ios::binary);
        fatalIf(!os, "cannot write ", json_path);
        writeServeJson(sum, sopt, meta, os);
        std::printf("wrote serve JSON to %s\n", json_path.c_str());
    }
    std::string timeline_out = args.get("timeline-out", "");
    if (!timeline_out.empty()) {
        std::ofstream os(timeline_out, std::ios::binary);
        fatalIf(!os, "cannot write ", timeline_out);
        writeTimelineJson(run, sopt, meta, os);
        std::printf("wrote timeline (%zu windows, %zu flight records)"
                    " to %s\n",
                    sum.timeline.windows.size(),
                    run.flightRecords.size(), timeline_out.c_str());
    }
    if (!trace_out.empty()) {
        std::ofstream os(trace_out, std::ios::binary);
        fatalIf(!os, "cannot write ", trace_out);
        writeChromeTrace(observer->tracer, os);
        std::printf("wrote %zu trace events to %s\n",
                    observer->tracer.events().size(), trace_out.c_str());
    }
    if (show_metrics || !metrics_json_path.empty()) {
        MetricsSnapshot snap = observer->metrics.snapshot();
        appendPoolCounters(snap, ThreadPool::shared().telemetry());
        appendTraceCounters(snap, observer->tracer);
        if (show_metrics) {
            std::puts("");
            printMetrics(snap, std::cout);
        }
        if (!metrics_json_path.empty()) {
            std::ofstream os(metrics_json_path, std::ios::binary);
            fatalIf(!os, "cannot write ", metrics_json_path);
            writeMetricsJson(snap, os);
            std::printf("wrote metrics JSON to %s\n",
                        metrics_json_path.c_str());
        }
    }
    return 0;
}

int
cmdTop(const Args &args)
{
    ServeOptions sopt;
    ServeReportMeta meta;
    ServeRun run = runServeStack(args, nullptr, sopt, meta);

    std::puts("");
    printTimeline(run.summary.timeline, std::cout);
    std::puts("");
    printWorstShedWindows(run.summary.timeline, 5, std::cout);

    std::string timeline_out = args.get("timeline-out", "");
    if (!timeline_out.empty()) {
        std::ofstream os(timeline_out, std::ios::binary);
        fatalIf(!os, "cannot write ", timeline_out);
        writeTimelineJson(run, sopt, meta, os);
        std::printf("wrote timeline JSON to %s\n", timeline_out.c_str());
    }
    return 0;
}

/**
 * Host probe: which SIMD tiers this machine can run, each with its
 * sequence-tile width, plus the tier the process resolved (cpuid best
 * or GOBO_KERNEL). Machine-parsable one-liner per tier so CI can gate
 * matrix cells: `grep -q '^avx512 runnable' || skip`.
 */
int
cmdKernels(const Args &)
{
    struct
    {
        const char *name;
        const KernelSet *set;
    } tiers[] = {{"generic", &genericKernels()},
                 {"avx2", avx2Kernels()},
                 {"avx512", avx512Kernels()}};
    for (const auto &t : tiers) {
        if (t.set)
            std::printf("%-8s runnable seq_tile=%zu\n", t.name,
                        t.set->seqTile);
        else
            std::printf("%-8s unavailable\n", t.name);
    }
    std::printf("active: %s\n", activeKernels().name);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string cmd = argv[1];
    Args args = Args::parse(argc, argv, 2);
    try {
        if (cmd == "generate")
            return cmdGenerate(args);
        if (cmd == "compress")
            return cmdCompress(args);
        if (cmd == "decompress")
            return cmdDecompress(args);
        if (cmd == "inspect")
            return cmdInspect(args);
        if (cmd == "infer")
            return cmdInfer(args);
        if (cmd == "audit")
            return cmdAudit(args);
        if (cmd == "serve")
            return cmdServe(args);
        if (cmd == "top")
            return cmdTop(args);
        if (cmd == "kernels")
            return cmdKernels(args);
        usage(("unknown command: " + cmd).c_str());
    } catch (const gobo::FatalError &e) {
        std::fprintf(stderr, "fatal: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        // Malformed numeric flags (std::stoul and friends) land here.
        std::fprintf(stderr, "error: bad argument (%s)\n", e.what());
        return 2;
    }
}
