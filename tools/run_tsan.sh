#!/bin/sh
# Build the ThreadSanitizer preset and run the concurrency-layer tests
# (thread pool, parallel ops/backends, parallel quantization).
#
# Usage: tools/run_tsan.sh [build-dir]
#
# GOBO_THREADS is forced above 1 so the parallel paths really run
# multi-threaded even on single-core CI runners.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-tsan"}

cmake -B "$build" -S "$repo" -DGOBO_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j \
    --target test_threadpool test_exec test_parallel test_ops

# ModelBitIdentity covers ThreadCountDeterminism and the skewed-batch
# WorkStealingOnSkewedSequenceLengths stress; the ThreadPool group
# covers the steal path itself (StealsFromABlockedParticipant,
# SkewedItemsBalanceAcrossWorkers, nested composition).
GOBO_THREADS=${GOBO_THREADS:-8} TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1} \
    ctest --test-dir "$build" --output-on-failure \
    -R 'ThreadPool|ExecContext|DefaultThreads|BackendBitIdentity|ModelBitIdentity|Parallel'

echo "TSan run clean."
