#!/usr/bin/env python3
"""Diff two bench JSON files with regression thresholds.

Dispatches on the "bench" field; the two files must come from the same
benchmark.

micro_forward — compares a candidate run against a baseline (typically
the committed bench/baseline/BENCH_forward.json) on three axes:

  * resident_bytes per engine/backend — the compression contract; this
    is deterministic, so the tolerance is tight (default 1.01x).
  * tokens_per_sec per engine/backend — noisy across machines, so the
    default only flags collapses below `--tps-tol` (0.4 = flag when
    the candidate is slower than 40% of baseline).
  * per-span mean_us for spans present in both files — flags any span
    whose mean latency grew by more than `--span-tol` (default 2.0x).
  * seq_tile / decode_cache_kb environment stamps — a candidate whose
    sequence-tile width or decoded-row cache budget differs from the
    baseline's is refused (exit 2), exactly like a kernel-tier or
    thread-count mismatch.
  * the candidate's thread-scaling curve (`scaling[]`) — parallel
    efficiency must stay above `--scaling-eff` (speedup_vs_serial >=
    eff * threads; the default 0.375 demands 1.5x at 4 threads). The
    gate only applies to entries whose thread count the candidate's
    machine can actually run (2 <= threads <= `cores`): oversubscribed
    points and single-core runners carry no scaling signal. Shared
    thread counts present in both files are also compared at
    `--tps-tol`, like the engine results. Baselines written before the
    field existed simply skip the cross-file half.

micro_kernels — compares per-(kernel, tier, bits) GB/s of streamed
operands at the loose `--tps-tol` fraction (kernel throughput is
wall-clock and noisy, like tokens/sec). Baseline tiers the candidate
machine cannot run (e.g. an AVX-512 row against an AVX2-only host)
carry no signal and are skipped with a note rather than failed;
candidate-only rows (a tier the baseline machine lacked) print an
explicit "new in candidate; not gated" line. Rows sharing a key but
disagreeing on `seq_tile` are refused — tile kernels process seq_tile
lanes per call, so GB/s is only comparable at equal width.

Machine-dependent blocks — when the candidate carries a top-level
block the baseline lacks *and* that block is in the known
machine-dependent set (`spans`, `pmu`), the diff prints an explicit
"skipped (machine-dependent)" line instead of staying silent: the
`pmu` roofline block in BENCH_kernels.json records hardware-counter
readings that are different on every host by construction, so it is
never gated — only acknowledged.

micro_serve — the deterministic block (response_checksum, shed and
batch counts, lane accounting, tile occupancy, virtual latency and
queue-wait quantiles, per-band stats, and the windowed `timeline`
series) is a pure function of (trace, options), so any difference is
an exact FAIL (floats compared at 1e-6 relative). Every timeline
window gates individually: counts exactly, derived rates/depths/
quantiles at the float epsilon. Wall-clock fields are
machine-dependent: tokens_per_sec gates loosely at `--tps-tol`,
batch_exec_us is printed FYI only. Files from different traces or
admission options are refused, like tier/thread mismatches; a
baseline that predates the timeline block skips that gate with a
note, while a candidate that *lost* the block fails.

Both files must have been produced by the same SIMD kernel tier
(`kernel_tier` in the JSON; files from before the field read as
"unknown"): comparing a generic-tier baseline against an AVX2
candidate measures the dispatcher, not a regression, so mismatched
tiers are refused with exit status 2. The same applies to `threads`:
a 1-thread baseline against an 8-thread candidate measures the
scheduler configuration, not a code change, so mismatched thread
counts are refused with exit status 2 as well. (For micro_serve the
deterministic block is tier/thread-invariant by design, but a
cross-environment wall-clock diff still says nothing — the stamp must
match for the run to be a regression signal.)

Exit status: 0 when everything is within tolerance, 1 when any
threshold is breached, 2 on malformed input or a refused comparison.
Intended for the non-blocking CI bench job, which prints the diff as
an FYI.

Usage: bench_diff.py BASELINE.json CANDIDATE.json
           [--span-tol X] [--resident-tol X] [--tps-tol X]
           [--scaling-eff X]
"""

import argparse
import json
import sys

KNOWN_BENCHES = ("micro_forward", "micro_serve", "micro_kernels")

# Top-level blocks that are different on every machine by
# construction; a candidate-only block from this set is acknowledged
# ("skipped (machine-dependent)") instead of silently ignored, and is
# never gated. `spans` is wall-clock latency, `pmu` is raw hardware
# counters (see EXPERIMENTS.md, BENCH_kernels.json).
MACHINE_DEPENDENT_BLOCKS = ("spans", "pmu")


def refuse(msg):
    """Print a refusal and exit 2 (sys.exit(str) would exit 1)."""
    print(msg, file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        refuse(f"bench_diff: cannot read {path}: {e}")
    # Files from before the dispatcher read as micro_forward.
    bench = data.get("bench", "micro_forward")
    if bench not in KNOWN_BENCHES:
        refuse(f"bench_diff: {path}: unknown bench '{bench}' "
               f"(known: {', '.join(KNOWN_BENCHES)})")
    return data


def report_machine_dependent_blocks(base, cand):
    """Acknowledge candidate-only machine-dependent blocks.

    A block from MACHINE_DEPENDENT_BLOCKS that the candidate carries
    but the baseline lacks is skipped *by design* (regenerating the
    baseline would not make it comparable), and the skip is printed so
    a reader never mistakes it for a gate.
    """
    for key in MACHINE_DEPENDENT_BLOCKS:
        if key in cand and key not in base:
            print(f"  {key}: skipped (machine-dependent; candidate-only "
                  f"block, never gated)")


def refuse_environment_mismatch(base, cand):
    """Tier / thread-count stamps must match or the diff is noise."""
    base_tier = base.get("kernel_tier", "unknown")
    cand_tier = cand.get("kernel_tier", "unknown")
    if base_tier != cand_tier:
        refuse(
            f"bench_diff: kernel tier mismatch: baseline ran "
            f"'{base_tier}', candidate ran '{cand_tier}' — re-run the "
            f"candidate under GOBO_KERNEL={base_tier} (cross-tier "
            f"throughput diffs measure the dispatcher, not a "
            f"regression)")

    base_threads = base.get("threads")
    cand_threads = cand.get("threads")
    if base_threads != cand_threads:
        refuse(
            f"bench_diff: thread-count mismatch: baseline ran "
            f"threads={base_threads}, candidate ran "
            f"threads={cand_threads} — re-run the candidate under "
            f"GOBO_THREADS={base_threads} (cross-width throughput "
            f"diffs measure the scheduler configuration, not a "
            f"regression)")


def results_by_key(data):
    return {
        (r["engine"], r["backend"]): r for r in data.get("results", [])
    }


def spans_by_name(data):
    return {s["name"]: s for s in data.get("spans", [])}


def diff_forward(base, cand, args):
    failures = []

    # The sequence-tile width and decoded-row cache budget are part of
    # the environment stamp, like the kernel tier: a 16-lane candidate
    # against an 8-lane baseline measures batching granularity, and a
    # different cache budget shifts both throughput and the resident
    # accounting. Either mismatch is a refusal, not a failure. Files
    # from before the fields existed read as None — regenerate.
    for key, why in (
        ("seq_tile", "cross-width diffs measure batching granularity, "
                     "not a regression"),
        ("decode_cache_kb", "the budget shifts throughput and resident "
                            "accounting"),
    ):
        if base.get(key) != cand.get(key):
            refuse(
                f"bench_diff: {key} mismatch: baseline "
                f"{base.get(key)} vs candidate {cand.get(key)} — "
                f"{why} (a missing value means the file predates the "
                f"field; regenerate the baseline)")

    base_r = results_by_key(base)
    cand_r = results_by_key(cand)
    for key in sorted(base_r):
        if key not in cand_r:
            failures.append(f"missing result for {key[0]}/{key[1]}")
            continue
        b, c = base_r[key], cand_r[key]
        name = f"{key[0]}/{key[1]}"

        rb = b.get("resident_bytes", 0)
        rc = c.get("resident_bytes", 0)
        if rb > 0:
            ratio = rc / rb
            mark = ""
            if ratio > args.resident_tol:
                failures.append(
                    f"{name}: resident_bytes {rb} -> {rc} "
                    f"({ratio:.3f}x > {args.resident_tol}x)")
                mark = "  <-- FAIL"
            print(f"  {name:22s} resident {rb:>10d} -> {rc:>10d} "
                  f"({ratio:.3f}x){mark}")

        tb = b.get("tokens_per_sec", 0)
        tc = c.get("tokens_per_sec", 0)
        if tb > 0:
            frac = tc / tb
            mark = ""
            if frac < args.tps_tol:
                failures.append(
                    f"{name}: tokens/sec {tb:.0f} -> {tc:.0f} "
                    f"({frac:.2f}x < {args.tps_tol}x)")
                mark = "  <-- FAIL"
            print(f"  {name:22s} tok/s    {tb:>10.0f} -> {tc:>10.0f} "
                  f"({frac:.2f}x){mark}")

    # Thread-scaling curve. The efficiency gate is *self*-contained to
    # the candidate file (speedup vs its own serial point), so it works
    # even against a baseline that predates scaling[]; the cross-file
    # tok/s comparison only runs for thread counts present in both.
    cand_scaling = {
        s["threads"]: s for s in cand.get("scaling", [])
    }
    base_scaling = {
        s["threads"]: s for s in base.get("scaling", [])
    }
    if cand_scaling:
        cores = cand.get("cores", 1)
        print(f"  scaling (candidate cores={cores}, "
              f"gate eff>={args.scaling_eff} for 2<=t<=cores):")
        for t in sorted(cand_scaling):
            c = cand_scaling[t]
            speed = c.get("speedup_vs_serial", 0.0)
            gated = 2 <= t <= cores
            mark = ""
            if gated and speed < args.scaling_eff * t:
                failures.append(
                    f"scaling: {speed:.2f}x at {t} threads < "
                    f"{args.scaling_eff * t:.2f}x "
                    f"(eff {args.scaling_eff} * {t})")
                mark = "  <-- FAIL"
            note = "" if gated else "  (not gated)"
            print(f"    t={t:<3d} {c.get('tokens_per_sec', 0):>10.0f} "
                  f"tok/s  {speed:.2f}x{note}{mark}")
            b = base_scaling.get(t)
            if b and b.get("tokens_per_sec", 0) > 0:
                frac = c.get("tokens_per_sec", 0) / b["tokens_per_sec"]
                mark = ""
                if frac < args.tps_tol:
                    failures.append(
                        f"scaling t={t}: tokens/sec "
                        f"{b['tokens_per_sec']:.0f} -> "
                        f"{c.get('tokens_per_sec', 0):.0f} "
                        f"({frac:.2f}x < {args.tps_tol}x)")
                    mark = "  <-- FAIL"
                print(f"         vs baseline "
                      f"{b['tokens_per_sec']:>10.0f} tok/s "
                      f"({frac:.2f}x){mark}")

    print("  spans (shared, by mean_us growth):")
    base_s = spans_by_name(base)
    cand_s = spans_by_name(cand)
    shared = sorted(set(base_s) & set(cand_s))
    grown = []
    for name in shared:
        bm, cm = base_s[name]["mean_us"], cand_s[name]["mean_us"]
        if bm <= 0:
            continue
        grown.append((cm / bm, name, bm, cm))
    for ratio, name, bm, cm in sorted(grown, reverse=True):
        mark = ""
        if ratio > args.span_tol:
            failures.append(
                f"span {name}: mean {bm:.1f}us -> {cm:.1f}us "
                f"({ratio:.2f}x > {args.span_tol}x)")
            mark = "  <-- FAIL"
        print(f"    {name:28s} {bm:>10.1f} -> {cm:>10.1f} us "
              f"({ratio:.2f}x){mark}")

    return failures


def kernel_results_by_key(data):
    return {
        (r["kernel"], r["tier"], r["bits"]): r
        for r in data.get("results", [])
    }


def diff_kernels(base, cand, args):
    """Per-(kernel, tier, bits) streamed-operand GB/s at `--tps-tol`.

    Kernel throughput is a wall-clock figure, so the gate is the same
    loose collapse detector used for tokens/sec. Tiers the candidate
    machine cannot run at all (no row for that tier) are noise, not
    regressions: the dispatcher decided, not the code under test.
    """
    failures = []
    base_r = kernel_results_by_key(base)
    cand_r = kernel_results_by_key(cand)
    cand_tiers = {tier for (_, tier, _) in cand_r}

    if base.get("seq_tile") != cand.get("seq_tile"):
        refuse(
            f"bench_diff: seq_tile mismatch: baseline "
            f"{base.get('seq_tile')} vs candidate "
            f"{cand.get('seq_tile')} — the bucket kernel's working "
            f"set depends on the tile width, so the runs are not "
            f"comparable")

    for key in sorted(base_r):
        kernel, tier, bits = key
        name = f"{kernel}/{tier}" + (f"/B{bits}" if bits else "")
        if key not in cand_r:
            if tier not in cand_tiers:
                print(f"  {name:34s} (tier not runnable on candidate; "
                      f"skipped)")
            else:
                failures.append(f"missing result for {name}")
            continue
        b, c = base_r[key], cand_r[key]
        st_b, st_c = b.get("seq_tile"), c.get("seq_tile")
        if st_b is not None and st_c is not None and st_b != st_c:
            refuse(
                f"bench_diff: {name}: per-result seq_tile mismatch: "
                f"baseline {st_b} vs candidate {st_c} — tile kernels "
                f"process seq_tile lanes per call, so GB/s is only "
                f"comparable at equal width")
        gb_b = b.get("gb_per_sec", 0)
        gb_c = c.get("gb_per_sec", 0)
        if gb_b > 0:
            frac = gb_c / gb_b
            mark = ""
            if frac < args.tps_tol:
                failures.append(
                    f"{name}: GB/s {gb_b:.2f} -> {gb_c:.2f} "
                    f"({frac:.2f}x < {args.tps_tol}x)")
                mark = "  <-- FAIL"
            print(f"  {name:34s} GB/s {gb_b:>9.2f} -> {gb_c:>9.2f} "
                  f"({frac:.2f}x){mark}")

    for key in sorted(set(cand_r) - set(base_r)):
        kernel, tier, bits = key
        name = f"{kernel}/{tier}" + (f"/B{bits}" if bits else "")
        print(f"  {name:34s} (new in candidate; not gated)")

    return failures


# Relative tolerance for the deterministic float fields of micro_serve
# (occupancy, virtual quantiles). They are pure functions of (trace,
# options); the epsilon only absorbs decimal round-tripping.
SERVE_EPS = 1e-6

# (json key, description) — integer fields gated exactly.
SERVE_EXACT = (
    ("requests", "request count"),
    ("completed", "completed count"),
    ("shed_overload", "overload sheds"),
    ("shed_deadline", "deadline sheds"),
    ("batches", "dispatched tiles"),
    ("lanes_filled", "filled lanes"),
    ("lanes_total", "total lanes"),
    ("tokens_served", "tokens served"),
)


def close(a, b, eps=SERVE_EPS):
    if a is None or b is None:
        return a == b
    return abs(a - b) <= eps * max(1.0, abs(a), abs(b))


# Per-window timeline fields: counts gate exactly, derived floats at
# SERVE_EPS (they only exist to save consumers a division).
TIMELINE_INT_KEYS = ("start_us", "arrivals", "admitted", "completed",
                     "shed_overload", "shed_deadline", "batches",
                     "lanes_filled", "lanes_total", "tokens")
TIMELINE_FLOAT_KEYS = ("tokens_per_sec", "mean_queue_depth",
                       "occupancy")


def diff_timeline(tl_b, tl_c):
    """Exact-gate the windowed series; every window must match."""
    failures = []
    for key in ("window_us", "clamped"):
        if tl_b.get(key) != tl_c.get(key):
            failures.append(
                f"timeline.{key}: {tl_b.get(key)} -> {tl_c.get(key)} "
                f"(deterministic field)")
    wb, wc = tl_b.get("windows", []), tl_c.get("windows", [])
    if len(wb) != len(wc):
        failures.append(
            f"timeline window count: {len(wb)} -> {len(wc)} "
            f"(deterministic field)")
    bad = 0
    for b, c in zip(wb, wc):
        diffs = []
        for key in TIMELINE_INT_KEYS:
            if b.get(key) != c.get(key):
                diffs.append(f"{key} {b.get(key)} -> {c.get(key)}")
        for key in TIMELINE_FLOAT_KEYS:
            if not close(b.get(key), c.get(key)):
                diffs.append(f"{key} {b.get(key)} -> {c.get(key)}")
        for q in ("p50", "p99"):
            vb = (b.get("queue_wait_us") or {}).get(q)
            vc = (c.get("queue_wait_us") or {}).get(q)
            if not close(vb, vc):
                diffs.append(f"queue_wait_us.{q} {vb} -> {vc}")
        if diffs:
            bad += 1
            failures.append(
                f"timeline window {b.get('window')}: "
                + ", ".join(diffs))
    mark = "  <-- FAIL" if bad or len(wb) != len(wc) else ""
    print(f"  timeline: {len(wc)} windows, {bad} differing{mark}")
    return failures


def diff_serve(base, cand, args):
    failures = []

    # The deterministic block is only comparable for the same scenario:
    # a different trace or admission policy is a different experiment.
    for key in ("trace", "engine", "format"):
        if base.get(key) != cand.get(key):
            refuse(
                f"bench_diff: {key} mismatch: baseline "
                f"'{base.get(key)}' vs candidate '{cand.get(key)}' — "
                f"micro_serve results are only comparable for the "
                f"same scenario")
    if base.get("options") != cand.get("options"):
        refuse(
            f"bench_diff: admission options mismatch: "
            f"{base.get('options')} vs {cand.get('options')} — "
            f"micro_serve results are only comparable for the same "
            f"scenario")

    print(f"  trace: {cand.get('trace')}")

    bc, cc = base.get("response_checksum"), cand.get("response_checksum")
    mark = ""
    if bc != cc:
        failures.append(
            f"response_checksum {bc} -> {cc}: served logits or "
            f"statuses changed (replay identity broken)")
        mark = "  <-- FAIL"
    print(f"  checksum {bc} -> {cc}{mark}")

    for key, what in SERVE_EXACT:
        b, c = base.get(key), cand.get(key)
        mark = ""
        if b != c:
            failures.append(f"{what}: {b} -> {c} (deterministic field)")
            mark = "  <-- FAIL"
        print(f"  {key:22s} {b} -> {c}{mark}")

    det_floats = [("tile_occupancy", base.get("tile_occupancy"),
                   cand.get("tile_occupancy"))]
    for block in ("latency_virtual_us", "queue_wait_virtual_us"):
        for q in ("p50", "p95", "p99"):
            det_floats.append((f"{block}.{q}",
                               (base.get(block) or {}).get(q),
                               (cand.get(block) or {}).get(q)))
    for name, b, c in det_floats:
        mark = ""
        if not close(b, c):
            failures.append(f"{name}: {b} -> {c} (deterministic field)")
            mark = "  <-- FAIL"
        print(f"  {name:28s} {b} -> {c}{mark}")

    base_bands = {b["band"]: b for b in base.get("bands", [])}
    cand_bands = {b["band"]: b for b in cand.get("bands", [])}
    if sorted(base_bands) != sorted(cand_bands):
        failures.append(
            f"band set changed: {sorted(base_bands)} -> "
            f"{sorted(cand_bands)}")
    for band in sorted(set(base_bands) & set(cand_bands)):
        b, c = base_bands[band], cand_bands[band]
        ok = (b["requests"] == c["requests"]
              and b["batches"] == c["batches"]
              and close(b["occupancy"], c["occupancy"]))
        mark = ""
        if not ok:
            failures.append(
                f"band {band}: {b['requests']}req/{b['batches']}tile "
                f"occ {b['occupancy']:.4f} -> "
                f"{c['requests']}req/{c['batches']}tile "
                f"occ {c['occupancy']:.4f}")
            mark = "  <-- FAIL"
        print(f"  band {band}: {c['requests']} req, {c['batches']} "
              f"tiles, occupancy {c['occupancy']:.4f}{mark}")

    # Timeline block: deterministic like everything above, gated
    # window by window. Baselines from before the block existed skip
    # with a note; a candidate that lost the block is a regression.
    tl_b, tl_c = base.get("timeline"), cand.get("timeline")
    if tl_b is None and tl_c is None:
        print("  timeline: absent in both files (skipped)")
    elif tl_b is None:
        print("  timeline: baseline predates the block (skipped; "
              "regenerate the baseline to gate it)")
    elif tl_c is None:
        failures.append(
            "timeline block missing from candidate (present in "
            "baseline)")
    else:
        failures.extend(diff_timeline(tl_b, tl_c))

    # Wall-clock half: loose gate on throughput, FYI on exec times.
    tb = base.get("tokens_per_sec", 0) or 0
    tc = cand.get("tokens_per_sec", 0) or 0
    if tb > 0:
        frac = tc / tb
        mark = ""
        if frac < args.tps_tol:
            failures.append(
                f"tokens/sec {tb:.0f} -> {tc:.0f} "
                f"({frac:.2f}x < {args.tps_tol}x)")
            mark = "  <-- FAIL"
        print(f"  tokens/sec (wall)      {tb:>10.0f} -> {tc:>10.0f} "
              f"({frac:.2f}x){mark}")
    exec_b = base.get("batch_exec_us") or {}
    exec_c = cand.get("batch_exec_us") or {}
    print(f"  batch_exec_us p50/p95/p99 (FYI, not gated): "
          f"{exec_b.get('p50')}/{exec_b.get('p95')}/{exec_b.get('p99')}"
          f" -> "
          f"{exec_c.get('p50')}/{exec_c.get('p95')}/{exec_c.get('p99')}")

    return failures


def main():
    ap = argparse.ArgumentParser(
        description="Diff two bench JSON files")
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--span-tol", type=float, default=2.0,
                    help="max allowed span mean_us growth factor")
    ap.add_argument("--resident-tol", type=float, default=1.01,
                    help="max allowed resident_bytes growth factor")
    ap.add_argument("--tps-tol", type=float, default=0.4,
                    help="min allowed tokens_per_sec fraction")
    ap.add_argument("--scaling-eff", type=float, default=0.375,
                    help="min parallel efficiency for scaling entries "
                         "with 2 <= threads <= cores (0.375 = 1.5x "
                         "speedup at 4 threads)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    base_bench = base.get("bench", "micro_forward")
    cand_bench = cand.get("bench", "micro_forward")
    if base_bench != cand_bench:
        refuse(
            f"bench_diff: bench mismatch: baseline is {base_bench}, "
            f"candidate is {cand_bench}")

    refuse_environment_mismatch(base, cand)

    print(f"bench_diff: {args.baseline} -> {args.candidate} "
          f"({base_bench})")
    report_machine_dependent_blocks(base, cand)
    if base_bench == "micro_serve":
        failures = diff_serve(base, cand, args)
    elif base_bench == "micro_kernels":
        failures = diff_kernels(base, cand, args)
    else:
        failures = diff_forward(base, cand, args)

    if failures:
        print(f"\nbench_diff: {len(failures)} threshold breach(es):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench_diff: all within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
