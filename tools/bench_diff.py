#!/usr/bin/env python3
"""Diff two BENCH_forward.json files with regression thresholds.

Compares a candidate run against a baseline (typically the committed
bench/baseline/BENCH_forward.json) on three axes:

  * resident_bytes per engine/backend — the compression contract; this
    is deterministic, so the tolerance is tight (default 1.01x).
  * tokens_per_sec per engine/backend — noisy across machines, so the
    default only flags collapses below `--tps-tol` (0.4 = flag when
    the candidate is slower than 40% of baseline).
  * per-span mean_us for spans present in both files — flags any span
    whose mean latency grew by more than `--span-tol` (default 2.0x).
  * the candidate's thread-scaling curve (`scaling[]`) — parallel
    efficiency must stay above `--scaling-eff` (speedup_vs_serial >=
    eff * threads; the default 0.375 demands 1.5x at 4 threads). The
    gate only applies to entries whose thread count the candidate's
    machine can actually run (2 <= threads <= `cores`): oversubscribed
    points and single-core runners carry no scaling signal. Shared
    thread counts present in both files are also compared at
    `--tps-tol`, like the engine results. Baselines written before the
    field existed simply skip the cross-file half.

Both files must have been produced by the same SIMD kernel tier
(`kernel_tier` in the JSON; files from before the field read as
"unknown"): comparing a generic-tier baseline against an AVX2
candidate measures the dispatcher, not a regression, so mismatched
tiers are refused with exit status 2. The same applies to `threads`:
a 1-thread baseline against an 8-thread candidate measures the
scheduler configuration, not a code change, so mismatched thread
counts are refused with exit status 2 as well.

Exit status: 0 when everything is within tolerance, 1 when any
threshold is breached, 2 on malformed input or a kernel-tier /
thread-count mismatch. Intended for the non-blocking CI bench job,
which prints the diff as an FYI.

Usage: bench_diff.py BASELINE.json CANDIDATE.json
           [--span-tol X] [--resident-tol X] [--tps-tol X]
           [--scaling-eff X]
"""

import argparse
import json
import sys


def refuse(msg):
    """Print a refusal and exit 2 (sys.exit(str) would exit 1)."""
    print(msg, file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        refuse(f"bench_diff: cannot read {path}: {e}")
    if data.get("bench") != "micro_forward":
        refuse(f"bench_diff: {path} is not a micro_forward result")
    return data


def results_by_key(data):
    return {
        (r["engine"], r["backend"]): r for r in data.get("results", [])
    }


def spans_by_name(data):
    return {s["name"]: s for s in data.get("spans", [])}


def main():
    ap = argparse.ArgumentParser(
        description="Diff two BENCH_forward.json files")
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--span-tol", type=float, default=2.0,
                    help="max allowed span mean_us growth factor")
    ap.add_argument("--resident-tol", type=float, default=1.01,
                    help="max allowed resident_bytes growth factor")
    ap.add_argument("--tps-tol", type=float, default=0.4,
                    help="min allowed tokens_per_sec fraction")
    ap.add_argument("--scaling-eff", type=float, default=0.375,
                    help="min parallel efficiency for scaling entries "
                         "with 2 <= threads <= cores (0.375 = 1.5x "
                         "speedup at 4 threads)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    base_tier = base.get("kernel_tier", "unknown")
    cand_tier = cand.get("kernel_tier", "unknown")
    if base_tier != cand_tier:
        refuse(
            f"bench_diff: kernel tier mismatch: baseline ran "
            f"'{base_tier}', candidate ran '{cand_tier}' — re-run the "
            f"candidate under GOBO_KERNEL={base_tier} (cross-tier "
            f"throughput diffs measure the dispatcher, not a "
            f"regression)")

    base_threads = base.get("threads")
    cand_threads = cand.get("threads")
    if base_threads != cand_threads:
        refuse(
            f"bench_diff: thread-count mismatch: baseline ran "
            f"threads={base_threads}, candidate ran "
            f"threads={cand_threads} — re-run the candidate under "
            f"GOBO_THREADS={base_threads} (cross-width throughput "
            f"diffs measure the scheduler configuration, not a "
            f"regression)")
    failures = []

    print(f"bench_diff: {args.baseline} -> {args.candidate}")
    base_r = results_by_key(base)
    cand_r = results_by_key(cand)
    for key in sorted(base_r):
        if key not in cand_r:
            failures.append(f"missing result for {key[0]}/{key[1]}")
            continue
        b, c = base_r[key], cand_r[key]
        name = f"{key[0]}/{key[1]}"

        rb = b.get("resident_bytes", 0)
        rc = c.get("resident_bytes", 0)
        if rb > 0:
            ratio = rc / rb
            mark = ""
            if ratio > args.resident_tol:
                failures.append(
                    f"{name}: resident_bytes {rb} -> {rc} "
                    f"({ratio:.3f}x > {args.resident_tol}x)")
                mark = "  <-- FAIL"
            print(f"  {name:22s} resident {rb:>10d} -> {rc:>10d} "
                  f"({ratio:.3f}x){mark}")

        tb = b.get("tokens_per_sec", 0)
        tc = c.get("tokens_per_sec", 0)
        if tb > 0:
            frac = tc / tb
            mark = ""
            if frac < args.tps_tol:
                failures.append(
                    f"{name}: tokens/sec {tb:.0f} -> {tc:.0f} "
                    f"({frac:.2f}x < {args.tps_tol}x)")
                mark = "  <-- FAIL"
            print(f"  {name:22s} tok/s    {tb:>10.0f} -> {tc:>10.0f} "
                  f"({frac:.2f}x){mark}")

    # Thread-scaling curve. The efficiency gate is *self*-contained to
    # the candidate file (speedup vs its own serial point), so it works
    # even against a baseline that predates scaling[]; the cross-file
    # tok/s comparison only runs for thread counts present in both.
    cand_scaling = {
        s["threads"]: s for s in cand.get("scaling", [])
    }
    base_scaling = {
        s["threads"]: s for s in base.get("scaling", [])
    }
    if cand_scaling:
        cores = cand.get("cores", 1)
        print(f"  scaling (candidate cores={cores}, "
              f"gate eff>={args.scaling_eff} for 2<=t<=cores):")
        for t in sorted(cand_scaling):
            c = cand_scaling[t]
            speed = c.get("speedup_vs_serial", 0.0)
            gated = 2 <= t <= cores
            mark = ""
            if gated and speed < args.scaling_eff * t:
                failures.append(
                    f"scaling: {speed:.2f}x at {t} threads < "
                    f"{args.scaling_eff * t:.2f}x "
                    f"(eff {args.scaling_eff} * {t})")
                mark = "  <-- FAIL"
            note = "" if gated else "  (not gated)"
            print(f"    t={t:<3d} {c.get('tokens_per_sec', 0):>10.0f} "
                  f"tok/s  {speed:.2f}x{note}{mark}")
            b = base_scaling.get(t)
            if b and b.get("tokens_per_sec", 0) > 0:
                frac = c.get("tokens_per_sec", 0) / b["tokens_per_sec"]
                mark = ""
                if frac < args.tps_tol:
                    failures.append(
                        f"scaling t={t}: tokens/sec "
                        f"{b['tokens_per_sec']:.0f} -> "
                        f"{c.get('tokens_per_sec', 0):.0f} "
                        f"({frac:.2f}x < {args.tps_tol}x)")
                    mark = "  <-- FAIL"
                print(f"         vs baseline "
                      f"{b['tokens_per_sec']:>10.0f} tok/s "
                      f"({frac:.2f}x){mark}")

    print("  spans (shared, by mean_us growth):")
    base_s = spans_by_name(base)
    cand_s = spans_by_name(cand)
    shared = sorted(set(base_s) & set(cand_s))
    grown = []
    for name in shared:
        bm, cm = base_s[name]["mean_us"], cand_s[name]["mean_us"]
        if bm <= 0:
            continue
        grown.append((cm / bm, name, bm, cm))
    for ratio, name, bm, cm in sorted(grown, reverse=True):
        mark = ""
        if ratio > args.span_tol:
            failures.append(
                f"span {name}: mean {bm:.1f}us -> {cm:.1f}us "
                f"({ratio:.2f}x > {args.span_tol}x)")
            mark = "  <-- FAIL"
        print(f"    {name:28s} {bm:>10.1f} -> {cm:>10.1f} us "
              f"({ratio:.2f}x){mark}")

    if failures:
        print(f"\nbench_diff: {len(failures)} threshold breach(es):")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench_diff: all within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
