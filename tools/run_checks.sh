#!/bin/sh
# Full check sweep: build and run the whole test suite in a plain
# Release tree and again under AddressSanitizer, then run the focused
# ThreadSanitizer concurrency pass (tools/run_tsan.sh). Keeps the
# packed-execution kernel and the serializer hardening sanitizer-clean.
#
# Usage: tools/run_checks.sh [--fast] [build-dir-prefix]
#
# Build trees land in <prefix>-release, <prefix>-asan and the TSan
# script's default (or $GOBO_TSAN_DIR). Set GOBO_SKIP_TSAN=1 to run
# only the Release + ASan legs. --fast runs the ASan leg alone (no
# Release tree, no TSan) — the CI sanitizer job and quick local
# pre-commit sweeps use this.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

fast=0
if [ "${1:-}" = "--fast" ]; then
    fast=1
    shift
fi
prefix=${1:-"$repo/build-checks"}

run_leg() {
    build=$1
    shift
    cmake -B "$build" -S "$repo" "$@"
    cmake --build "$build" -j
    ctest --test-dir "$build" --output-on-failure -j
}

if [ "$fast" != 1 ]; then
    echo "== Release =="
    run_leg "$prefix-release" -DCMAKE_BUILD_TYPE=Release
fi

echo "== AddressSanitizer =="
# VAR=x func is unportable across shells, so export for the leg instead.
ASAN_OPTIONS=${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}
export ASAN_OPTIONS
run_leg "$prefix-asan" -DGOBO_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo

if [ "$fast" != 1 ] && [ "${GOBO_SKIP_TSAN:-0}" != 1 ]; then
    echo "== ThreadSanitizer (concurrency suites) =="
    "$repo/tools/run_tsan.sh" ${GOBO_TSAN_DIR:+"$GOBO_TSAN_DIR"}
fi

echo "All checks clean."
